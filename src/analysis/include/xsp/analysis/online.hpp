// OnlineAnalyzer: live, bounded-memory aggregation over draining span
// batches — the streaming counterpart of the offline analyses.
//
// The 15 analyses of Table I (analyses.hpp) consume a fully materialized
// ModelProfile/Timeline, so a long-running service can only be analyzed
// after the fact. The drain-subscriber hooks already stream every
// SpanBatch mid-drain with bounded memory; this subsystem rides them and
// incrementally maintains, with O(distinct keys) memory and zero
// per-span heap allocation in steady state:
//
//   * per-layer-type and per-kernel aggregates keyed by interned StrId
//     (count, total/min/max ns, bytes) — streaming A6/A7 and A10,
//   * log-bucketed latency histograms with p50/p95/p99 extraction,
//   * sliding-window span/s and GPU busy occupancy, plus the cumulative
//     GPU-vs-non-GPU split — streaming A13,
//   * per-shard load counters for hot-shard detection.
//
// Aggregation is exact where the offline analyses are exact: counts,
// integer-ns totals, min/max, and byte sums over the same batch stream
// equal the offline values key for key (pinned by the online-vs-offline
// equivalence suite). Only the percentiles are approximate, with a
// bounded relative error set by the histogram's sub-bucket resolution.
//
// This header deliberately depends only on xsp::trace — it sits *below*
// profile in the link DAG so profile::Session can own an analyzer and
// expose live snapshots during a run.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <limits>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "xsp/common/string_table.hpp"
#include "xsp/common/time.hpp"
#include "xsp/trace/sampler.hpp"
#include "xsp/trace/span.hpp"
#include "xsp/trace/trace_server.hpp"  // DrainSubscriber

namespace xsp::analysis {

using common::StrId;

/// Log-bucketed latency histogram: 8 linear sub-buckets per power of two,
/// 512 fixed buckets covering the whole non-negative Ns range. record()
/// is branch-cheap and allocation-free; percentile() walks the fixed
/// array. The quantile error is bounded by the sub-bucket width: a
/// reported percentile is the upper bound of its bucket, at most 12.5%
/// above the true value (exact below 2^kSubBits ns).
class LatencyHistogram {
 public:
  static constexpr unsigned kSubBits = 3;                       ///< 8 sub-buckets per octave
  static constexpr std::size_t kSubCount = std::size_t{1} << kSubBits;
  static constexpr std::size_t kBucketCount = 64 << kSubBits;   ///< covers all 63 value bits

  /// Record one duration (negative durations clamp to 0).
  void record(Ns d) noexcept {
    ++counts_[bucket_index(d)];
    ++total_;
  }

  [[nodiscard]] std::uint64_t count() const noexcept { return total_; }

  /// Upper bound of the bucket holding the p-th percentile (p in
  /// [0, 100]); 0 when empty.
  [[nodiscard]] Ns percentile(double p) const noexcept;

  void clear() noexcept {
    counts_.fill(0);
    total_ = 0;
  }

  /// Bucket index for a duration: values below kSubCount map exactly;
  /// above, the top kSubBits+1 bits select (octave, sub-bucket).
  static std::size_t bucket_index(Ns d) noexcept;
  /// Inclusive upper bound of a bucket's value range.
  static Ns bucket_upper_bound(std::size_t index) noexcept;

 private:
  std::array<std::uint64_t, kBucketCount> counts_{};
  std::uint64_t total_ = 0;
};

/// One streaming aggregate row: the online counterpart of an offline
/// A6/A7 (layer-type) or A10 (kernel-name) aggregation row. Keys are
/// interned StrIds — the same ids the offline analyses group by.
struct OnlineAggregate {
  StrId key;
  std::uint64_t count = 0;
  Ns total_ns = 0;
  Ns min_ns = std::numeric_limits<Ns>::max();
  Ns max_ns = 0;
  /// alloc_bytes total for layer rows; DRAM read+write bytes total for
  /// kernel rows.
  double bytes = 0;
  /// Horvitz-Thompson rescaled estimates of the *pre-sampling* count and
  /// total: each observed span contributes 1/effective_rate (weight 1
  /// with no sampler attached, so est == exact on unsampled streams).
  /// Unbiased for the unsampled totals; see src/analysis/README.md for
  /// the variance bounds the equivalence tests pin.
  double est_count = 0;
  double est_total_ns = 0;
  /// SpaceSaving overestimation bound, non-zero only for rows that took
  /// over an evicted slot in a bounded kernel table: the row's true count
  /// is within [count - count_error, count]. 0 = exact.
  std::uint64_t count_error = 0;

  [[nodiscard]] double mean_ns() const noexcept {
    return count > 0 ? static_cast<double>(total_ns) / static_cast<double>(count) : 0;
  }
};

/// A consistent point-in-time copy of every online aggregate. Cheap to
/// take relative to the span rate (it copies O(distinct keys) rows, not
/// spans) and safe to read while publication continues.
struct OnlineSnapshot {
  // -- totals ------------------------------------------------------------
  std::uint64_t spans = 0;     ///< every span observed, all levels/kinds
  std::uint64_t batches = 0;   ///< drain deliveries observed
  std::uint64_t layer_spans = 0;
  std::uint64_t kernel_spans = 0;   ///< execution-kind kernel spans (memcpys excluded)
  std::uint64_t memcpy_spans = 0;
  Ns first_begin = 0;  ///< earliest span begin seen (0 when none)
  Ns last_end = 0;     ///< latest span end seen

  // -- streaming A13: GPU vs non-GPU -------------------------------------
  Ns layer_total_ns = 0;   ///< sum of layer-span durations
  Ns kernel_total_ns = 0;  ///< sum of kernel execution durations
  /// kernel_total / layer_total, as a percentage (0 when no layer time) —
  /// the whole-model aggregate of offline A13's per-layer split.
  double gpu_pct = 0;

  // -- keyed aggregates (sorted by descending total_ns, ties by name) ----
  std::vector<OnlineAggregate> layer_types;  ///< streaming A6/A7
  std::vector<OnlineAggregate> kernels;      ///< streaming A10

  // -- latency percentiles (bucket upper bounds; ≤12.5% high) ------------
  Ns layer_p50 = 0, layer_p95 = 0, layer_p99 = 0;
  Ns kernel_p50 = 0, kernel_p95 = 0, kernel_p99 = 0;

  // -- sliding window (simulated time) -----------------------------------
  Ns window = 0;                    ///< configured window width
  double window_spans_per_sec = 0;  ///< spans/s of simulated time over the window
  double window_gpu_busy_pct = 0;   ///< GPU-busy fraction of the window, percent

  // -- shard loads --------------------------------------------------------
  /// Spans observed per shard (hot-shard detection); size = configured
  /// shard_count, all zero except [0] when the single-sink adapter fed
  /// the analyzer.
  std::vector<std::uint64_t> shard_spans;

  // -- interning telemetry ------------------------------------------------
  /// Global StringTable size/bytes sampled at snapshot time, plus the
  /// bounded-interning state: the byte budget in force (0 = unbounded)
  /// and the lifetime count of interns rejected at the budget or slot
  /// ceiling (the xsp_top "strtab:" line).
  std::uint64_t interned_strings = 0;
  std::uint64_t interned_bytes = 0;
  std::uint64_t strtab_budget_bytes = 0;
  std::uint64_t rejected_interns = 0;

  // -- sampling ----------------------------------------------------------
  /// Horvitz-Thompson estimate of the pre-sampling span count (== spans
  /// when no sampler is attached).
  double est_spans = 0;
  /// Attached sampler's configured base rate (1.0 when none).
  double sampling_rate = 1.0;
  /// Publish-layer admission accounting injected via
  /// set_sampling_accounting() — the fleet's kept/shed counters, so a
  /// dashboard can show actual shed volume, which the analyzer cannot see
  /// from the admitted stream alone. Both 0 until injected.
  std::uint64_t sampled_kept = 0;
  std::uint64_t sampled_dropped = 0;
  /// Bounded-kernel-table telemetry: the configured row cap (0 = exact,
  /// unbounded) and lifetime SpaceSaving takeovers so far.
  std::size_t kernel_row_limit = 0;
  std::uint64_t kernel_evictions = 0;
};

/// max(shard_spans) / mean(shard_spans): 1.0 = perfectly balanced, and a
/// value near shard-count means one shard carries everything. 0 when no
/// spans were observed.
double shard_imbalance(const std::vector<std::uint64_t>& shard_spans);

/// Render a snapshot as a JSON object — the payload the streaming
/// exporter's span-JSON metadata footer carries as its "online" section.
/// Keyed aggregates are truncated to `max_rows` per table (the footer is
/// a summary, not a second copy of the trace).
std::string online_summary_json(const OnlineSnapshot& snapshot, std::size_t max_rows = 10);

struct OnlineAnalyzerOptions {
  /// Shards feeding this analyzer (sizes the per-shard load counters).
  std::size_t shard_count = 1;
  /// Sliding window for span/s and GPU-busy occupancy, in simulated time.
  Ns window = 100 * kNsPerMs;
  /// Distinct keys to pre-size each keyed table for. Growth past this
  /// allocates (amortized, on new-key insert only); steady state — no new
  /// keys — never allocates.
  std::size_t expected_keys = 64;
  /// Bound on distinct kernel rows. 0 keeps the exact unbounded table;
  /// > 0 turns the kernel table into a SpaceSaving top-k sketch: when a
  /// new kernel name arrives with the table full, the minimum-count row
  /// is evicted and the newcomer inherits its count as `count_error`
  /// (the classic overestimation bound). True heavy hitters — kernels
  /// whose count exceeds observed/max_kernel_rows — are guaranteed
  /// present; time/byte stats of a takeover row restart from zero.
  std::size_t max_kernel_rows = 0;
};

/// A threshold alert on snapshot-derived metrics, evaluated by
/// poll_alerts(). Edge-triggered: the callback fires when `value(snap)`
/// crosses the threshold in the armed direction and re-arms only after
/// the metric recovers — a serving layer polling every second gets one
/// callback per excursion, not one per poll.
struct AlertRule {
  std::string name;
  /// Metric extractor, e.g. [](const OnlineSnapshot& s) { return
  /// double(s.kernel_p99); } or a drop-rate derived from the sampling
  /// accounting fields.
  std::function<double(const OnlineSnapshot&)> value;
  double threshold = 0;
  /// true: fire when the metric rises above the threshold; false: when it
  /// falls below.
  bool fire_above = true;
};

/// Handle for one registered alert (remove_alert). 0 is never valid.
using AlertId = std::uint64_t;

/// Fired from poll_alerts() with the rule, the offending value, and the
/// snapshot it was computed from.
using AlertCallback =
    std::function<void(const AlertRule&, double, const OnlineSnapshot&)>;

/// Thread-safe streaming aggregator over draining span batches.
///
/// Attach via subscriber()/shard_subscriber() as a drain subscriber
/// (kObserve to tee alongside normal assembly, kConsume to be the span
/// stream's only consumer), or call observe()/observe_shard() directly.
/// Locking is per delivered batch list, never per span; concurrent calls
/// from N shard collector threads are the intended shape.
///
/// Memory is O(distinct keys) + fixed histogram/window arrays, and a
/// steady-state observe() (no new keys) performs zero heap allocations —
/// both pinned by tests.
class OnlineAnalyzer {
 public:
  explicit OnlineAnalyzer(OnlineAnalyzerOptions options = {});

  OnlineAnalyzer(const OnlineAnalyzer&) = delete;
  OnlineAnalyzer& operator=(const OnlineAnalyzer&) = delete;

  /// Aggregate one drained batch list (attributed to shard 0).
  void observe(const trace::SpanBatches& batches) { observe_shard(0, batches); }

  /// Aggregate one drained batch list from shard `shard` (indices beyond
  /// shard_count clamp to the last counter).
  void observe_shard(std::size_t shard, const trace::SpanBatches& batches);

  /// Point-in-time copy of every aggregate; callable from any thread
  /// while observe() keeps running (the live dashboard path).
  [[nodiscard]] OnlineSnapshot snapshot() const;

  /// Forget everything (aggregates, histograms, window, shard loads).
  void reset();

  /// Reconfigure the sliding window width in place. The (transient)
  /// window ring restarts; cumulative aggregates are untouched — a
  /// service reconfiguring its dashboard must not lose lifetime stats.
  /// No-op for non-positive or unchanged values.
  void set_window(Ns window);

  /// Grow the per-shard load counters to cover `shard_count` shards
  /// (existing counts are kept; shrinking is not supported). Lets one
  /// analyzer outlive a resharded fleet without losing history.
  void ensure_shard_count(std::size_t shard_count);

  /// Adapter for TraceServer/ShardedTraceServer::add_drain_subscriber.
  /// The returned callable references *this: keep the analyzer alive
  /// until the subscriber is removed.
  [[nodiscard]] trace::DrainSubscriber subscriber() {
    return [this](const trace::SpanBatches& batches) { observe(batches); };
  }

  /// Shard-aware adapter for the ShardedTraceServer overload, feeding the
  /// per-shard load counters.
  [[nodiscard]] std::function<void(std::size_t, const trace::SpanBatches&)>
  shard_subscriber() {
    return [this](std::size_t shard, const trace::SpanBatches& batches) {
      observe_shard(shard, batches);
    };
  }

  [[nodiscard]] const OnlineAnalyzerOptions& options() const noexcept { return options_; }

  // --- sampling-aware estimation -----------------------------------------
  /// Attach (or clear, with nullptr) the sampler whose admission decisions
  /// shaped the observed stream. Each subsequent span is weighted by
  /// 1/Sampler::effective_rate(span) into the est_count/est_total_ns
  /// aggregate fields and est_spans — the Horvitz-Thompson estimator of
  /// the pre-sampling totals. Exact fields (count, total_ns, min/max) stay
  /// what was actually observed.
  void set_sampler(std::shared_ptr<const trace::Sampler> sampler);

  /// Inject the publish-layer admission counters (TraceServer::
  /// sampled_kept/dropped_count deltas) so snapshots can report the true
  /// shed volume; the analyzer never sees rejected spans itself.
  void set_sampling_accounting(std::uint64_t kept, std::uint64_t dropped);

  // --- alerting ----------------------------------------------------------
  /// Register an edge-triggered threshold alert; returns a handle for
  /// remove_alert(). The callback runs inside poll_alerts() on the polling
  /// thread, outside the analyzer's locks — it may call snapshot() or
  /// add/remove alerts, but blocking in it delays only the poller.
  AlertId add_alert(AlertRule rule, AlertCallback callback);
  void remove_alert(AlertId id);

  /// Take one snapshot and evaluate every registered rule against it,
  /// firing callbacks for rules newly crossing their threshold (and
  /// re-arming ones that recovered). Returns the number fired. The
  /// intended shape is a dashboard/serving loop calling this at its
  /// refresh cadence.
  std::size_t poll_alerts();

 private:
  /// Open-addressing StrId -> row-index map plus its dense row storage:
  /// lookups probe a power-of-two slot array (no allocation), inserts
  /// append a row and may rehash (amortized, new-key only). Dense rows
  /// make snapshot() a plain vector copy.
  struct KeyedTable {
    std::vector<std::uint32_t> slots;  ///< row index + 1; 0 = empty
    std::vector<OnlineAggregate> rows;

    void reserve(std::size_t expected_keys);
    OnlineAggregate& at(StrId key);
    /// SpaceSaving variant: like at(), but a *new* key arriving with
    /// `max_rows` rows already present takes over the minimum-count row
    /// instead of appending — the evicted key's count is inherited and
    /// recorded as the newcomer's count_error, time/byte stats reset, and
    /// the slot array is rebuilt for the key swap. `evictions` counts the
    /// takeovers.
    OnlineAggregate& at_capped(StrId key, std::size_t max_rows, std::uint64_t& evictions);
    void clear() noexcept;

   private:
    void rehash(std::size_t new_slot_count);
  };

  /// One sliding-window bucket: epoch-tagged so stale laps of the ring
  /// reset lazily instead of requiring a sweep.
  struct WindowBucket {
    std::uint64_t epoch = 0;  ///< bucket start / bucket width, +1 (0 = never used)
    std::uint64_t spans = 0;
    Ns gpu_busy = 0;
  };
  static constexpr std::size_t kWindowBuckets = 64;

  /// Credit `spans`/`gpu_busy` to window bucket number `b` in one touch —
  /// observe_shard() run-length batches consecutive same-bucket spans
  /// (the common case: timestamps within a batch are near-monotonic), so
  /// the ring is touched per bucket-run, not per span.
  void record_window_bulk(std::uint64_t b, std::uint64_t spans, Ns gpu_busy);

  OnlineAnalyzerOptions options_;
  /// Window bucket width, rounded up to a power of two so the per-span
  /// bucket computation is a shift, not a division; the shift amount is
  /// what record_window() uses.
  Ns bucket_width_ = 1;
  unsigned bucket_shift_ = 0;

  mutable std::mutex mu_;
  // Everything below is guarded by mu_.
  std::uint64_t spans_ = 0;
  std::uint64_t batches_ = 0;
  std::uint64_t layer_spans_ = 0;
  std::uint64_t kernel_spans_ = 0;
  std::uint64_t memcpy_spans_ = 0;
  Ns first_begin_ = std::numeric_limits<Ns>::max();
  Ns last_end_ = 0;
  Ns layer_total_ns_ = 0;
  Ns kernel_total_ns_ = 0;
  KeyedTable layer_types_;
  KeyedTable kernels_;
  LatencyHistogram layer_hist_;
  LatencyHistogram kernel_hist_;
  std::array<WindowBucket, kWindowBuckets> window_{};
  std::vector<std::uint64_t> shard_spans_;
  /// Sampling state (still guarded by mu_): the attached policy, the HT
  /// running total, injected publish-layer accounting, and the bounded
  /// kernel table's takeover count.
  std::shared_ptr<const trace::Sampler> sampler_;
  double est_spans_ = 0;
  std::uint64_t sampled_kept_ = 0;
  std::uint64_t sampled_dropped_ = 0;
  std::uint64_t kernel_evictions_ = 0;

  /// Interned annotation keys this analyzer reads from spans. These
  /// mirror profile::span_keys() by string value (equal strings intern to
  /// equal ids — pinned by OnlineKeysMatchSpanKeys); they are re-interned
  /// here so this module needs no profile/cupti dependency.
  struct Keys {
    StrId layer_type{"layer_type"};
    StrId alloc_bytes{"alloc_bytes"};
    StrId kind{"kind"};
    StrId kind_memcpy{"memcpy"};
    StrId dram_read_bytes{"dram_read_bytes"};
    StrId dram_write_bytes{"dram_write_bytes"};
  };
  Keys keys_;

  /// Alert registry, under its own lock so registration/polling never
  /// contends with the observe hot path. `fired` is the edge-trigger
  /// latch: set on crossing, cleared on recovery.
  struct Alert {
    AlertId id = 0;
    AlertRule rule;
    AlertCallback callback;
    bool fired = false;
  };
  std::mutex alert_mu_;
  std::vector<Alert> alerts_;
  AlertId next_alert_id_ = 1;
};

}  // namespace xsp::analysis
