// The 15 automated analyses of the paper's Table I.
//
//   A1  model information table                       (M)
//   A2  layer information table                       (L)
//   A3  layer latency                                 (L)
//   A4  layer memory allocation                       (L)
//   A5  layer type distribution                       (L)
//   A6  layer latency aggregated by type              (L)
//   A7  layer memory allocation aggregated by type    (L)
//   A8  GPU kernel information table                  (G)
//   A9  GPU kernel roofline                           (G)
//   A10 GPU kernel information aggregated by name     (G)
//   A11 GPU kernel information aggregated by layer    (L/G)
//   A12 GPU metrics aggregated by layer               (L/G)
//   A13 GPU vs non-GPU latency                        (L/G)
//   A14 layer roofline                                (L/G)
//   A15 GPU kernel information aggregated by model    (M/G)
//
// All analyses consume the merged ModelProfile produced by leveled
// experimentation, so every number is the accurate one for its level.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "xsp/profile/model_profile.hpp"
#include "xsp/sim/gpu_spec.hpp"

namespace xsp::analysis {

using profile::ModelProfile;

// ---------------------------------------------------------------- A1 ----

/// One batch-size evaluation point.
struct BatchPoint {
  std::int64_t batch = 1;
  double latency_ms = 0;

  [[nodiscard]] double throughput() const noexcept {
    return latency_ms > 0 ? static_cast<double>(batch) / (latency_ms / 1e3) : 0;
  }
};

/// A1: model information table + optimal batch size. The optimal batch is
/// the smallest whose doubling improves throughput by no more than
/// `tolerance` (default 5%, the paper's rule, Section III-D1).
struct ModelInformation {
  std::vector<BatchPoint> points;
  std::int64_t optimal_batch = 1;
  double max_throughput = 0;    ///< throughput at the optimal batch
  double online_latency_ms = 0; ///< latency at batch 1
};

ModelInformation a1_model_information(std::vector<BatchPoint> points, double tolerance = 0.05);

// ------------------------------------------------------------- A2-A4 ----

struct LayerInfoRow {
  int index = 0;
  std::string name;
  std::string type;
  std::string shape;
  double latency_ms = 0;
  double alloc_mb = 0;
};

/// A2: full layer information table, in execution order.
std::vector<LayerInfoRow> a2_layer_info(const ModelProfile& p);

/// The `k` most time-consuming layers (paper Table II).
std::vector<LayerInfoRow> top_layers_by_latency(const ModelProfile& p, std::size_t k);

/// A3: per-layer latency in execution order (microseconds, Figure 5a).
std::vector<double> a3_layer_latency_us(const ModelProfile& p);

/// A4: per-layer allocated memory in execution order (MB, Figure 5b).
std::vector<double> a4_layer_alloc_mb(const ModelProfile& p);

// ------------------------------------------------------------- A5-A7 ----

/// Aggregation of layers sharing a type (Figure 4).
struct LayerTypeAgg {
  std::string type;
  int count = 0;
  double latency_ms = 0;
  double alloc_mb = 0;
  double count_pct = 0;    ///< A5
  double latency_pct = 0;  ///< A6
  double alloc_pct = 0;    ///< A7
};

/// A5/A6/A7 in one pass; sorted by descending latency.
std::vector<LayerTypeAgg> layer_type_aggregation(const ModelProfile& p);

// ------------------------------------------------------------ A8-A10 ----

struct KernelInfoRow {
  std::string name;
  int layer_index = -1;
  double latency_ms = 0;
  double gflops = 0;
  double dram_reads_mb = 0;
  double dram_writes_mb = 0;
  double occupancy_pct = 0;
  double arithmetic_intensity = 0;  ///< flops/byte
  double tflops = 0;                ///< arithmetic throughput
  bool memory_bound = false;
};

/// A8: per-invocation kernel table (memcpys excluded), execution order.
std::vector<KernelInfoRow> a8_kernel_info(const ModelProfile& p, const sim::GpuSpec& gpu);

/// The `k` most time-consuming kernel invocations (paper Table III).
std::vector<KernelInfoRow> top_kernels_by_latency(const ModelProfile& p, const sim::GpuSpec& gpu,
                                                  std::size_t k);

/// A point on a roofline plot (A9 for kernels, A14 for layers).
struct RooflinePoint {
  std::string label;
  double arithmetic_intensity = 0;
  double tflops = 0;
  double latency_ms = 0;
  bool memory_bound = false;
};

/// A9: kernel roofline (Figure 6).
std::vector<RooflinePoint> a9_kernel_roofline(const ModelProfile& p, const sim::GpuSpec& gpu);

struct KernelAggRow {
  std::string name;
  int count = 0;
  double latency_ms = 0;
  double latency_pct = 0;  ///< of total model latency
  double gflops = 0;
  double dram_reads_mb = 0;
  double dram_writes_mb = 0;
  double occupancy_pct = 0;  ///< latency-weighted
  double arithmetic_intensity = 0;
  double tflops = 0;
  bool memory_bound = false;
};

/// A10: kernels aggregated by name (paper Table IV), descending latency.
std::vector<KernelAggRow> a10_kernel_by_name(const ModelProfile& p, const sim::GpuSpec& gpu);

// ----------------------------------------------------------- A11-A14 ----

struct LayerKernelAggRow {
  int index = 0;
  std::string name;
  std::string type;
  double layer_latency_ms = 0;
  double kernel_latency_ms = 0;
  double gflops = 0;
  double dram_reads_mb = 0;
  double dram_writes_mb = 0;
  double occupancy_pct = 0;
  double arithmetic_intensity = 0;
  double tflops = 0;
  bool memory_bound = false;
};

/// A11: kernel information aggregated per layer (paper Table V).
std::vector<LayerKernelAggRow> a11_kernel_by_layer(const ModelProfile& p,
                                                   const sim::GpuSpec& gpu);

/// A12: per-layer total flops / DRAM reads / writes (Figure 7).
struct LayerGpuMetrics {
  std::vector<double> gflops;
  std::vector<double> dram_reads_mb;
  std::vector<double> dram_writes_mb;
};
LayerGpuMetrics a12_layer_gpu_metrics(const ModelProfile& p);

/// A13: GPU vs non-GPU latency per layer (Figure 8).
struct GpuNonGpuRow {
  int index = 0;
  double layer_ms = 0;
  double gpu_ms = 0;
  double non_gpu_ms = 0;
  double gpu_pct = 0;
};
std::vector<GpuNonGpuRow> a13_gpu_vs_nongpu(const ModelProfile& p);

/// A14: layer roofline (Figure 9).
std::vector<RooflinePoint> a14_layer_roofline(const ModelProfile& p, const sim::GpuSpec& gpu);

// ---------------------------------------------------------------- A15 ----

/// A15: whole-model aggregation (paper Table VI rows / Figure 10 points).
struct ModelAggRow {
  std::int64_t batch = 1;
  double model_latency_ms = 0;
  double kernel_latency_ms = 0;
  double gflops = 0;
  double dram_reads_mb = 0;
  double dram_writes_mb = 0;
  double occupancy_pct = 0;
  double arithmetic_intensity = 0;
  double tflops = 0;
  bool memory_bound = false;
};
ModelAggRow a15_model_aggregate(const ModelProfile& p, const sim::GpuSpec& gpu);

// ------------------------------------------------- derived characterics ----

/// Percentage of layer latency in convolution layers (Conv2D +
/// DepthwiseConv2dNative) — Table VIII's last column.
double conv_latency_percentage(const ModelProfile& p);

/// GPU latency percentage: total kernel latency / model latency
/// (Table IX column 3).
double gpu_latency_percentage(const ModelProfile& p);

/// Execution-stage attribution (Table IX last four columns): the model's
/// layer sequence is split into beginning/middle/end thirds by layer index
/// and each quantity's dominant stage is reported.
enum class Stage : int { kBeginning = 0, kMiddle = 1, kEnd = 2 };
const char* stage_name(Stage s);

struct StageAnalysis {
  Stage latency = Stage::kBeginning;
  Stage alloc = Stage::kBeginning;
  Stage flops = Stage::kBeginning;
  Stage memory_access = Stage::kBeginning;
};
StageAnalysis stage_analysis(const ModelProfile& p);

}  // namespace xsp::analysis
