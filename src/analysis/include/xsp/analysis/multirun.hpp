// Multi-run aggregation: the statistical front half of the paper's
// automated analysis pipeline.
//
// "Since meaningful characterization requires multiple runs, the pipeline
//  takes traces from a user-defined number of evaluations, correlates the
//  information, and computes the trimmed mean value (or other user-defined
//  statistical summaries) for the same performance value (e.g. latency)
//  across runs."                                    — paper, Section III-D
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "xsp/common/statistics.hpp"
#include "xsp/models/registry.hpp"
#include "xsp/profile/leveled.hpp"
#include "xsp/profile/model_profile.hpp"

namespace xsp::analysis {

/// Per-value statistical summaries across runs for one layer.
struct LayerStats {
  int index = 0;
  std::string name;
  std::string type;
  Summary latency_ms;
  Summary kernel_latency_ms;
};

/// Summaries across runs for one kernel position (kernels are correlated
/// across runs by execution order, which the deterministic executor
/// preserves run to run).
struct KernelStats {
  std::string name;
  int layer_index = -1;
  Summary latency_ms;
};

/// The correlated multi-run profile. `representative` is the first run's
/// merged profile with every latency replaced by the across-run trimmed
/// mean, so the A1-A15 analyses can run directly on statistically settled
/// numbers.
struct MultiRunProfile {
  std::size_t runs = 0;
  Summary model_latency_ms;
  std::vector<LayerStats> layers;
  std::vector<KernelStats> kernels;
  profile::ModelProfile representative;
};

/// Correlate N merged profiles of the *same* graph and summarize each
/// performance value across them. All profiles must have identical layer
/// and kernel structure (same model, batch, system, framework); throws
/// std::invalid_argument otherwise.
MultiRunProfile aggregate_runs(std::span<const profile::ModelProfile> profiles,
                               double trim_fraction = 0.2);

/// Convenience: run the full leveled experiment `runs` times with
/// deterministic per-run timing jitter and aggregate.
MultiRunProfile profile_n_runs(const profile::LeveledRunner& runner,
                               const framework::Graph& graph, int runs,
                               double timing_jitter = 0.02, bool gpu_metrics = true);

}  // namespace xsp::analysis
