// Systematic profile comparison.
//
// "The consistent profiling and automated analysis workflows in XSP enable
//  systematic comparisons of models, frameworks, and hardware."
//                                                  — paper, Section I
//
// Two merged profiles of the same or different configurations are lined up
// and the quantities the paper compares (latency, throughput, GPU share,
// metrics, boundness) are reported side by side with ratios.
#pragma once

#include <string>
#include <vector>

#include "xsp/profile/model_profile.hpp"
#include "xsp/sim/gpu_spec.hpp"

namespace xsp::analysis {

/// One compared quantity.
struct ComparisonRow {
  std::string quantity;
  double a = 0;
  double b = 0;
  /// b / a; 0 when a is 0.
  [[nodiscard]] double ratio() const noexcept { return a != 0 ? b / a : 0; }
};

struct ProfileComparison {
  std::string label_a;
  std::string label_b;
  std::vector<ComparisonRow> rows;

  /// Row lookup by quantity name; nullptr when absent.
  [[nodiscard]] const ComparisonRow* find(const std::string& quantity) const;
};

/// Compare two merged profiles evaluated on `system_a`/`system_b`
/// (identical for model/framework comparisons on one machine).
ProfileComparison compare_profiles(const profile::ModelProfile& a, const sim::GpuSpec& system_a,
                                   const profile::ModelProfile& b, const sim::GpuSpec& system_b);

/// Per-layer-type latency comparison between two profiles of the *same*
/// model under different frameworks/systems — the drill-down the paper
/// uses to attribute the TF/MXNet MobileNet gap to element-wise layers.
std::vector<ComparisonRow> compare_layer_types(const profile::ModelProfile& a,
                                               const profile::ModelProfile& b);

}  // namespace xsp::analysis
