// Batch-size sweeps feeding A1 and the Figure 3 / 10 / 11 curves.
#pragma once

#include <cstdint>
#include <vector>

#include "xsp/analysis/analyses.hpp"
#include "xsp/models/registry.hpp"
#include "xsp/profile/leveled.hpp"

namespace xsp::analysis {

/// Default batch grid used throughout the paper: 1, 2, 4, ..., max_batch.
std::vector<std::int64_t> batch_grid(std::int64_t max_batch = 256);

/// Evaluate model latency at each batch size in `batches` (M-only runs).
std::vector<BatchPoint> sweep_batches(const profile::LeveledRunner& runner,
                                      const models::ModelInfo& model,
                                      const std::vector<std::int64_t>& batches);

/// Convenience: sweep the default grid and compute A1.
ModelInformation model_information(const profile::LeveledRunner& runner,
                                   const models::ModelInfo& model,
                                   std::int64_t max_batch = 256);

}  // namespace xsp::analysis
