#include "xsp/analysis/analyses.hpp"

#include <algorithm>
#include <array>
#include <unordered_map>

#include "xsp/sim/cost_model.hpp"

namespace xsp::analysis {

namespace {

double safe_pct(double part, double whole) { return whole > 0 ? part / whole * 100.0 : 0; }

}  // namespace

ModelInformation a1_model_information(std::vector<BatchPoint> points, double tolerance) {
  std::sort(points.begin(), points.end(),
            [](const BatchPoint& a, const BatchPoint& b) { return a.batch < b.batch; });
  ModelInformation info;
  info.points = std::move(points);
  if (info.points.empty()) return info;

  info.online_latency_ms = info.points.front().batch == 1 ? info.points.front().latency_ms : 0;

  // The paper's rule: pick the batch size where doubling it does not
  // increase throughput by more than `tolerance`.
  std::size_t chosen = info.points.size() - 1;
  for (std::size_t i = 0; i + 1 < info.points.size(); ++i) {
    const double here = info.points[i].throughput();
    const double doubled = info.points[i + 1].throughput();
    if (doubled <= here * (1.0 + tolerance)) {
      chosen = i;
      break;
    }
  }
  info.optimal_batch = info.points[chosen].batch;
  info.max_throughput = info.points[chosen].throughput();
  return info;
}

std::vector<LayerInfoRow> a2_layer_info(const ModelProfile& p) {
  std::vector<LayerInfoRow> rows;
  rows.reserve(p.layers.size());
  for (const auto& l : p.layers) {
    LayerInfoRow r;
    r.index = l.index;
    r.name = l.name.str();
    r.type = l.type.str();
    r.shape = l.shape.str();
    r.latency_ms = to_ms(l.latency);
    r.alloc_mb = l.alloc_bytes / 1e6;
    rows.push_back(std::move(r));
  }
  return rows;
}

std::vector<LayerInfoRow> top_layers_by_latency(const ModelProfile& p, std::size_t k) {
  auto rows = a2_layer_info(p);
  std::sort(rows.begin(), rows.end(), [](const LayerInfoRow& a, const LayerInfoRow& b) {
    return a.latency_ms > b.latency_ms;
  });
  if (rows.size() > k) rows.resize(k);
  return rows;
}

std::vector<double> a3_layer_latency_us(const ModelProfile& p) {
  std::vector<double> out;
  out.reserve(p.layers.size());
  for (const auto& l : p.layers) out.push_back(to_us(l.latency));
  return out;
}

std::vector<double> a4_layer_alloc_mb(const ModelProfile& p) {
  std::vector<double> out;
  out.reserve(p.layers.size());
  for (const auto& l : p.layers) out.push_back(l.alloc_bytes / 1e6);
  return out;
}

std::vector<LayerTypeAgg> layer_type_aggregation(const ModelProfile& p) {
  // Aggregation keys are interned ids: grouping compares/hashes 32 bits
  // instead of layer-type strings.
  std::unordered_map<common::StrId, LayerTypeAgg, common::StrIdHash> by_type;
  double total_latency = 0;
  double total_alloc = 0;
  for (const auto& l : p.layers) {
    auto& agg = by_type[l.type];
    if (agg.type.empty()) agg.type = l.type.str();
    agg.count += 1;
    agg.latency_ms += to_ms(l.latency);
    agg.alloc_mb += l.alloc_bytes / 1e6;
    total_latency += to_ms(l.latency);
    total_alloc += l.alloc_bytes / 1e6;
  }
  std::vector<LayerTypeAgg> out;
  out.reserve(by_type.size());
  for (auto& [type, agg] : by_type) {
    agg.count_pct = safe_pct(agg.count, static_cast<double>(p.layers.size()));
    agg.latency_pct = safe_pct(agg.latency_ms, total_latency);
    agg.alloc_pct = safe_pct(agg.alloc_mb, total_alloc);
    out.push_back(std::move(agg));
  }
  std::sort(out.begin(), out.end(), [](const LayerTypeAgg& a, const LayerTypeAgg& b) {
    if (a.latency_ms != b.latency_ms) return a.latency_ms > b.latency_ms;
    return a.type < b.type;  // deterministic tie-break
  });
  return out;
}

namespace {

KernelInfoRow kernel_row(const profile::KernelView& k, const sim::GpuSpec& gpu) {
  KernelInfoRow r;
  r.name = k.name.str();
  r.layer_index = k.layer_index;
  r.latency_ms = to_ms(k.latency);
  r.gflops = k.flops / 1e9;
  r.dram_reads_mb = k.dram_read_bytes / 1e6;
  r.dram_writes_mb = k.dram_write_bytes / 1e6;
  r.occupancy_pct = k.achieved_occupancy * 100.0;
  r.arithmetic_intensity = sim::arithmetic_intensity(k.flops, k.dram_bytes());
  r.tflops = sim::arithmetic_throughput(k.flops, k.latency) / 1e12;
  r.memory_bound = sim::is_memory_bound(k.flops, k.dram_bytes(), gpu);
  return r;
}

}  // namespace

std::vector<KernelInfoRow> a8_kernel_info(const ModelProfile& p, const sim::GpuSpec& gpu) {
  std::vector<KernelInfoRow> rows;
  rows.reserve(p.kernels.size());
  for (const auto& k : p.kernels) {
    if (k.is_memcpy) continue;
    rows.push_back(kernel_row(k, gpu));
  }
  return rows;
}

std::vector<KernelInfoRow> top_kernels_by_latency(const ModelProfile& p, const sim::GpuSpec& gpu,
                                                  std::size_t k) {
  auto rows = a8_kernel_info(p, gpu);
  std::sort(rows.begin(), rows.end(), [](const KernelInfoRow& a, const KernelInfoRow& b) {
    return a.latency_ms > b.latency_ms;
  });
  if (rows.size() > k) rows.resize(k);
  return rows;
}

std::vector<RooflinePoint> a9_kernel_roofline(const ModelProfile& p, const sim::GpuSpec& gpu) {
  std::vector<RooflinePoint> out;
  for (const auto& k : p.kernels) {
    if (k.is_memcpy) continue;
    RooflinePoint pt;
    pt.label = k.name.str();
    pt.arithmetic_intensity = sim::arithmetic_intensity(k.flops, k.dram_bytes());
    pt.tflops = sim::arithmetic_throughput(k.flops, k.latency) / 1e12;
    pt.latency_ms = to_ms(k.latency);
    pt.memory_bound = sim::is_memory_bound(k.flops, k.dram_bytes(), gpu);
    out.push_back(std::move(pt));
  }
  return out;
}

std::vector<KernelAggRow> a10_kernel_by_name(const ModelProfile& p, const sim::GpuSpec& gpu) {
  struct Acc {
    int count = 0;
    Ns latency = 0;
    double flops = 0, reads = 0, writes = 0, weighted_occ = 0;
  };
  std::unordered_map<common::StrId, Acc, common::StrIdHash> by_name;
  for (const auto& k : p.kernels) {
    if (k.is_memcpy) continue;
    auto& acc = by_name[k.name];
    acc.count += 1;
    acc.latency += k.latency;
    acc.flops += k.flops;
    acc.reads += k.dram_read_bytes;
    acc.writes += k.dram_write_bytes;
    acc.weighted_occ += k.achieved_occupancy * static_cast<double>(k.latency);
  }
  std::vector<KernelAggRow> out;
  out.reserve(by_name.size());
  for (auto& [name, acc] : by_name) {
    KernelAggRow r;
    r.name = name.str();
    r.count = acc.count;
    r.latency_ms = to_ms(acc.latency);
    r.latency_pct = safe_pct(to_ms(acc.latency), to_ms(p.model_latency));
    r.gflops = acc.flops / 1e9;
    r.dram_reads_mb = acc.reads / 1e6;
    r.dram_writes_mb = acc.writes / 1e6;
    r.occupancy_pct =
        acc.latency > 0 ? acc.weighted_occ / static_cast<double>(acc.latency) * 100.0 : 0;
    r.arithmetic_intensity = sim::arithmetic_intensity(acc.flops, acc.reads + acc.writes);
    r.tflops = sim::arithmetic_throughput(acc.flops, acc.latency) / 1e12;
    r.memory_bound = sim::is_memory_bound(acc.flops, acc.reads + acc.writes, gpu);
    out.push_back(std::move(r));
  }
  std::sort(out.begin(), out.end(), [](const KernelAggRow& a, const KernelAggRow& b) {
    if (a.latency_ms != b.latency_ms) return a.latency_ms > b.latency_ms;
    return a.name < b.name;  // deterministic tie-break
  });
  return out;
}

std::vector<LayerKernelAggRow> a11_kernel_by_layer(const ModelProfile& p,
                                                   const sim::GpuSpec& gpu) {
  std::vector<LayerKernelAggRow> out;
  out.reserve(p.layers.size());
  for (const auto& l : p.layers) {
    LayerKernelAggRow r;
    r.index = l.index;
    r.name = l.name.str();
    r.type = l.type.str();
    r.layer_latency_ms = to_ms(l.latency);
    r.kernel_latency_ms = to_ms(l.kernel_latency);
    r.gflops = l.flops / 1e9;
    r.dram_reads_mb = l.dram_read_bytes / 1e6;
    r.dram_writes_mb = l.dram_write_bytes / 1e6;
    r.occupancy_pct = l.achieved_occupancy * 100.0;
    r.arithmetic_intensity = sim::arithmetic_intensity(l.flops, l.dram_bytes());
    r.tflops = sim::arithmetic_throughput(l.flops, l.kernel_latency) / 1e12;
    r.memory_bound = sim::is_memory_bound(l.flops, l.dram_bytes(), gpu);
    out.push_back(std::move(r));
  }
  return out;
}

LayerGpuMetrics a12_layer_gpu_metrics(const ModelProfile& p) {
  LayerGpuMetrics m;
  m.gflops.reserve(p.layers.size());
  for (const auto& l : p.layers) {
    m.gflops.push_back(l.flops / 1e9);
    m.dram_reads_mb.push_back(l.dram_read_bytes / 1e6);
    m.dram_writes_mb.push_back(l.dram_write_bytes / 1e6);
  }
  return m;
}

std::vector<GpuNonGpuRow> a13_gpu_vs_nongpu(const ModelProfile& p) {
  std::vector<GpuNonGpuRow> out;
  out.reserve(p.layers.size());
  for (const auto& l : p.layers) {
    GpuNonGpuRow r;
    r.index = l.index;
    r.layer_ms = to_ms(l.latency);
    r.gpu_ms = to_ms(l.kernel_latency);
    r.non_gpu_ms = to_ms(l.non_gpu_latency());
    r.gpu_pct = safe_pct(r.gpu_ms, r.layer_ms);
    out.push_back(r);
  }
  return out;
}

std::vector<RooflinePoint> a14_layer_roofline(const ModelProfile& p, const sim::GpuSpec& gpu) {
  std::vector<RooflinePoint> out;
  for (const auto& l : p.layers) {
    if (l.kernel_latency == 0) continue;  // layers with no GPU work
    RooflinePoint pt;
    pt.label = l.type.str();
    pt.arithmetic_intensity = sim::arithmetic_intensity(l.flops, l.dram_bytes());
    pt.tflops = sim::arithmetic_throughput(l.flops, l.kernel_latency) / 1e12;
    pt.latency_ms = to_ms(l.latency);
    pt.memory_bound = sim::is_memory_bound(l.flops, l.dram_bytes(), gpu);
    out.push_back(std::move(pt));
  }
  return out;
}

ModelAggRow a15_model_aggregate(const ModelProfile& p, const sim::GpuSpec& gpu) {
  ModelAggRow r;
  r.batch = p.batch;
  r.model_latency_ms = to_ms(p.model_latency);
  r.kernel_latency_ms = to_ms(p.total_kernel_latency());
  r.gflops = p.total_flops() / 1e9;
  r.dram_reads_mb = p.total_dram_reads() / 1e6;
  r.dram_writes_mb = p.total_dram_writes() / 1e6;
  r.occupancy_pct = p.weighted_occupancy() * 100.0;
  const double bytes = p.total_dram_reads() + p.total_dram_writes();
  r.arithmetic_intensity = sim::arithmetic_intensity(p.total_flops(), bytes);
  r.tflops = sim::arithmetic_throughput(p.total_flops(), p.total_kernel_latency()) / 1e12;
  r.memory_bound = sim::is_memory_bound(p.total_flops(), bytes, gpu);
  return r;
}

double conv_latency_percentage(const ModelProfile& p) {
  static const common::StrId kConv2D{"Conv2D"};
  static const common::StrId kDepthwise{"DepthwiseConv2dNative"};
  Ns conv = 0;
  Ns total = 0;
  for (const auto& l : p.layers) {
    total += l.latency;
    if (l.type == kConv2D || l.type == kDepthwise) conv += l.latency;
  }
  return safe_pct(to_ms(conv), to_ms(total));
}

double gpu_latency_percentage(const ModelProfile& p) {
  return safe_pct(to_ms(p.total_kernel_latency()), to_ms(p.model_latency));
}

const char* stage_name(Stage s) {
  switch (s) {
    case Stage::kBeginning: return "B";
    case Stage::kMiddle: return "M";
    case Stage::kEnd: return "E";
  }
  return "?";
}

StageAnalysis stage_analysis(const ModelProfile& p) {
  std::array<double, 3> latency{};
  std::array<double, 3> alloc{};
  std::array<double, 3> flops{};
  std::array<double, 3> mem{};
  const std::size_t n = p.layers.size();
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t stage = std::min<std::size_t>(2, i * 3 / std::max<std::size_t>(1, n));
    latency[stage] += to_ms(p.layers[i].latency);
    alloc[stage] += p.layers[i].alloc_bytes;
    flops[stage] += p.layers[i].flops;
    mem[stage] += p.layers[i].dram_bytes();
  }
  const auto argmax = [](const std::array<double, 3>& xs) {
    std::size_t best = 0;
    for (std::size_t i = 1; i < 3; ++i) {
      if (xs[i] > xs[best]) best = i;
    }
    return static_cast<Stage>(best);
  };
  StageAnalysis s;
  s.latency = argmax(latency);
  s.alloc = argmax(alloc);
  s.flops = argmax(flops);
  s.memory_access = argmax(mem);
  return s;
}

}  // namespace xsp::analysis
