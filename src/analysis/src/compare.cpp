#include "xsp/analysis/compare.hpp"

#include <map>

#include "xsp/analysis/analyses.hpp"

namespace xsp::analysis {

const ComparisonRow* ProfileComparison::find(const std::string& quantity) const {
  for (const auto& r : rows) {
    if (r.quantity == quantity) return &r;
  }
  return nullptr;
}

ProfileComparison compare_profiles(const profile::ModelProfile& a, const sim::GpuSpec& system_a,
                                   const profile::ModelProfile& b,
                                   const sim::GpuSpec& system_b) {
  ProfileComparison cmp;
  cmp.label_a = a.model_name + "/" + a.framework_name + "/" + a.system_name;
  cmp.label_b = b.model_name + "/" + b.framework_name + "/" + b.system_name;

  const auto add = [&](std::string quantity, double va, double vb) {
    cmp.rows.push_back({std::move(quantity), va, vb});
  };
  const auto agg_a = a15_model_aggregate(a, system_a);
  const auto agg_b = a15_model_aggregate(b, system_b);

  add("model_latency_ms", agg_a.model_latency_ms, agg_b.model_latency_ms);
  add("throughput_per_s",
      agg_a.model_latency_ms > 0 ? static_cast<double>(a.batch) / agg_a.model_latency_ms * 1e3
                                 : 0,
      agg_b.model_latency_ms > 0 ? static_cast<double>(b.batch) / agg_b.model_latency_ms * 1e3
                                 : 0);
  add("kernel_latency_ms", agg_a.kernel_latency_ms, agg_b.kernel_latency_ms);
  add("gpu_latency_pct", gpu_latency_percentage(a), gpu_latency_percentage(b));
  add("non_gpu_latency_ms", agg_a.model_latency_ms - agg_a.kernel_latency_ms,
      agg_b.model_latency_ms - agg_b.kernel_latency_ms);
  add("conv_latency_pct", conv_latency_percentage(a), conv_latency_percentage(b));
  add("gflops", agg_a.gflops, agg_b.gflops);
  add("dram_read_mb", agg_a.dram_reads_mb, agg_b.dram_reads_mb);
  add("dram_write_mb", agg_a.dram_writes_mb, agg_b.dram_writes_mb);
  add("achieved_occupancy_pct", agg_a.occupancy_pct, agg_b.occupancy_pct);
  add("arithmetic_intensity", agg_a.arithmetic_intensity, agg_b.arithmetic_intensity);
  add("memory_bound", agg_a.memory_bound ? 1 : 0, agg_b.memory_bound ? 1 : 0);
  return cmp;
}

std::vector<ComparisonRow> compare_layer_types(const profile::ModelProfile& a,
                                               const profile::ModelProfile& b) {
  std::map<std::string, ComparisonRow> by_type;
  for (const auto& agg : layer_type_aggregation(a)) {
    auto& row = by_type[agg.type];
    row.quantity = agg.type;
    row.a = agg.latency_ms;
  }
  for (const auto& agg : layer_type_aggregation(b)) {
    auto& row = by_type[agg.type];
    row.quantity = agg.type;
    row.b = agg.latency_ms;
  }
  std::vector<ComparisonRow> out;
  out.reserve(by_type.size());
  for (auto& [type, row] : by_type) out.push_back(std::move(row));
  return out;
}

}  // namespace xsp::analysis
