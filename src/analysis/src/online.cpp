#include "xsp/analysis/online.hpp"

#include <algorithm>
#include <bit>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace xsp::analysis {

// ------------------------------------------------------------------------
// LatencyHistogram

std::size_t LatencyHistogram::bucket_index(Ns d) noexcept {
  const std::uint64_t u = d > 0 ? static_cast<std::uint64_t>(d) : 0;
  if (u < kSubCount) return static_cast<std::size_t>(u);
  // Octave = position of the leading bit; the next kSubBits bits pick the
  // linear sub-bucket, the remaining low bits are truncated — so a
  // bucket's width is 1/kSubCount of its value, the error bound.
  const unsigned e = static_cast<unsigned>(std::bit_width(u)) - 1 - kSubBits;
  return ((static_cast<std::size_t>(e) + 1) << kSubBits) |
         static_cast<std::size_t>((u >> e) & (kSubCount - 1));
}

Ns LatencyHistogram::bucket_upper_bound(std::size_t index) noexcept {
  if (index < kSubCount) return static_cast<Ns>(index);
  const unsigned e = static_cast<unsigned>(index >> kSubBits) - 1;
  const std::uint64_t sub = index & (kSubCount - 1);
  const std::uint64_t lower = (kSubCount + sub) << e;
  return static_cast<Ns>(lower + ((std::uint64_t{1} << e) - 1));
}

Ns LatencyHistogram::percentile(double p) const noexcept {
  if (total_ == 0) return 0;
  const double clamped = p < 0 ? 0 : (p > 100 ? 100 : p);
  std::uint64_t target =
      static_cast<std::uint64_t>(std::ceil(clamped / 100.0 * static_cast<double>(total_)));
  if (target == 0) target = 1;
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < kBucketCount; ++i) {
    cumulative += counts_[i];
    if (cumulative >= target) return bucket_upper_bound(i);
  }
  return bucket_upper_bound(kBucketCount - 1);
}

// ------------------------------------------------------------------------
// KeyedTable

namespace {

std::size_t key_hash(StrId key) noexcept {
  // StrIds are dense small integers; a multiplicative mix spreads them
  // over the high bits before masking.
  return static_cast<std::size_t>((key.raw() * 0x9E3779B97F4A7C15ull) >> 32);
}

}  // namespace

void OnlineAnalyzer::KeyedTable::reserve(std::size_t expected_keys) {
  std::size_t n = 16;
  while (n < expected_keys * 2) n <<= 1;
  slots.assign(n, 0);
  rows.reserve(expected_keys);
}

void OnlineAnalyzer::KeyedTable::rehash(std::size_t new_slot_count) {
  slots.assign(new_slot_count, 0);
  const std::size_t mask = new_slot_count - 1;
  for (std::uint32_t r = 0; r < rows.size(); ++r) {
    std::size_t i = key_hash(rows[r].key) & mask;
    while (slots[i] != 0) i = (i + 1) & mask;
    slots[i] = r + 1;
  }
}

OnlineAggregate& OnlineAnalyzer::KeyedTable::at(StrId key) {
  if (slots.empty()) reserve(16);
  std::size_t mask = slots.size() - 1;
  std::size_t i = key_hash(key) & mask;
  while (slots[i] != 0) {
    OnlineAggregate& row = rows[slots[i] - 1];
    if (row.key == key) return row;
    i = (i + 1) & mask;
  }
  // New key. Keep load under 3/4 so probes stay short; growth only ever
  // happens here — a steady-state stream (no new keys) never reaches it.
  if ((rows.size() + 1) * 4 >= slots.size() * 3) {
    rehash(slots.size() * 2);
    mask = slots.size() - 1;
    i = key_hash(key) & mask;
    while (slots[i] != 0) i = (i + 1) & mask;
  }
  OnlineAggregate row;
  row.key = key;
  rows.push_back(row);
  slots[i] = static_cast<std::uint32_t>(rows.size());
  return rows.back();
}

OnlineAggregate& OnlineAnalyzer::KeyedTable::at_capped(StrId key, std::size_t max_rows,
                                                       std::uint64_t& evictions) {
  if (slots.empty()) reserve(16);
  std::size_t mask = slots.size() - 1;
  std::size_t i = key_hash(key) & mask;
  while (slots[i] != 0) {
    OnlineAggregate& row = rows[slots[i] - 1];
    if (row.key == key) return row;
    i = (i + 1) & mask;
  }
  if (max_rows == 0 || rows.size() < max_rows) {
    // Under the cap: identical to at()'s append path.
    if ((rows.size() + 1) * 4 >= slots.size() * 3) {
      rehash(slots.size() * 2);
      mask = slots.size() - 1;
      i = key_hash(key) & mask;
      while (slots[i] != 0) i = (i + 1) & mask;
    }
    OnlineAggregate row;
    row.key = key;
    rows.push_back(row);
    slots[i] = static_cast<std::uint32_t>(rows.size());
    return rows.back();
  }
  // SpaceSaving takeover: the newcomer seizes the minimum-count row,
  // inheriting its count (and HT estimate) as the standard overestimate —
  // recorded in count_error so readers know the bound. A true heavy
  // hitter's count always exceeds every minimum it could seize, so it can
  // never be evicted once established. The linear victim scan is O(cap)
  // but runs only on *new-key-while-full*, which a heavy-hitter-skewed
  // stream makes rare; the slot rebuild for the key swap is O(cap) too.
  ++evictions;
  std::size_t victim = 0;
  for (std::size_t r = 1; r < rows.size(); ++r) {
    if (rows[r].count < rows[victim].count) victim = r;
  }
  OnlineAggregate& row = rows[victim];
  const std::uint64_t inherited_count = row.count;
  const double inherited_est = row.est_count;
  row = OnlineAggregate{};
  row.key = key;
  row.count = inherited_count;
  row.est_count = inherited_est;
  row.count_error = inherited_count;
  rehash(slots.size());
  return row;
}

void OnlineAnalyzer::KeyedTable::clear() noexcept {
  std::fill(slots.begin(), slots.end(), 0);
  rows.clear();
}

// ------------------------------------------------------------------------
// OnlineAnalyzer

OnlineAnalyzer::OnlineAnalyzer(OnlineAnalyzerOptions options) : options_(options) {
  if (options_.shard_count == 0) options_.shard_count = 1;
  if (options_.window <= 0) options_.window = 100 * kNsPerMs;
  const Ns ideal_width = options_.window / static_cast<Ns>(kWindowBuckets);
  bucket_shift_ = ideal_width > 1
                      ? static_cast<unsigned>(
                            std::bit_width(static_cast<std::uint64_t>(ideal_width) - 1))
                      : 0;
  bucket_width_ = Ns{1} << bucket_shift_;
  layer_types_.reserve(options_.expected_keys);
  kernels_.reserve(options_.expected_keys);
  shard_spans_.assign(options_.shard_count, 0);
}

void OnlineAnalyzer::set_window(Ns window) {
  if (window <= 0) return;
  std::lock_guard lk(mu_);
  if (window == options_.window) return;
  options_.window = window;
  const Ns ideal_width = options_.window / static_cast<Ns>(kWindowBuckets);
  bucket_shift_ = ideal_width > 1
                      ? static_cast<unsigned>(
                            std::bit_width(static_cast<std::uint64_t>(ideal_width) - 1))
                      : 0;
  bucket_width_ = Ns{1} << bucket_shift_;
  // Ring epochs are keyed by bucket number, which just changed meaning:
  // drop the (windowed, transient) ring rather than misattribute it. The
  // cumulative aggregates are untouched — reconfiguring the window must
  // not reset a service's lifetime stats.
  window_.fill(WindowBucket{});
}

void OnlineAnalyzer::ensure_shard_count(std::size_t shard_count) {
  if (shard_count == 0) shard_count = 1;
  std::lock_guard lk(mu_);
  if (shard_count > shard_spans_.size()) shard_spans_.resize(shard_count, 0);
  if (shard_count > options_.shard_count) options_.shard_count = shard_count;
}

void OnlineAnalyzer::record_window_bulk(std::uint64_t b, std::uint64_t spans, Ns gpu_busy) {
  WindowBucket& bucket = window_[b % kWindowBuckets];
  if (bucket.epoch != b + 1) {
    // A span older than a full ring lap must not clobber a newer bucket
    // (cross-shard arrival order is arbitrary); it is outside any window
    // we would still report, so drop it.
    if (bucket.epoch > b + 1) return;
    bucket.epoch = b + 1;
    bucket.spans = 0;
    bucket.gpu_busy = 0;
  }
  bucket.spans += spans;
  bucket.gpu_busy += gpu_busy;
}

void OnlineAnalyzer::observe_shard(std::size_t shard, const trace::SpanBatches& batches) {
  using trace::SpanKind;
  std::lock_guard lk(mu_);
  // Hot loop: keys and scalar accumulators live in locals so the compiler
  // does not reload members through `this` after every aggregate write
  // (aliasing it cannot disprove); they are written back once per call.
  const Keys keys = keys_;
  const trace::Sampler* sampler = sampler_.get();
  const std::size_t kernel_cap = options_.max_kernel_rows;
  Ns first_begin = first_begin_;
  Ns last_end = last_end_;
  Ns layer_total = 0;
  Ns kernel_total = 0;
  std::uint64_t layer_spans = 0;
  std::uint64_t kernel_spans = 0;
  std::uint64_t memcpy_spans = 0;
  std::uint64_t observed = 0;
  double est = 0;
  // Window run-length accumulator: consecutive spans almost always land
  // in the same (coarse) window bucket, so fold them locally and touch
  // the ring once per run.
  std::uint64_t run_bucket = std::numeric_limits<std::uint64_t>::max();
  std::uint64_t run_spans = 0;
  Ns run_gpu = 0;
  const unsigned bucket_shift = bucket_shift_;
  for (const auto& batch : batches) {
    if (batch.empty()) continue;
    ++batches_;
    observed += batch.size();
    for (const trace::Span& s : batch) {
      const Ns raw = s.end - s.begin;
      const Ns dur = raw > 0 ? raw : 0;
      if (s.begin < first_begin) first_begin = s.begin;
      if (s.end > last_end) last_end = s.end;
      // Horvitz-Thompson weight: an admitted span stands in for
      // 1/effective_rate pre-sampling spans. 1.0 without a sampler, so
      // est fields stay exactly equal to the exact fields on unsampled
      // streams (pinned by the sampled-vs-oracle suite).
      double w = 1.0;
      if (sampler != nullptr) {
        const double r = sampler->effective_rate(s);
        if (r > 0 && r < 1.0) w = 1.0 / r;
      }
      est += w;
      Ns gpu_busy = 0;
      if (s.level == trace::kLayerLevel && s.kind == SpanKind::kRegular) {
        ++layer_spans;
        layer_total += dur;
        layer_hist_.record(dur);
        StrId type = s.tag_or(keys.layer_type);
        if (type.empty()) type = s.name;  // generic traces without layer_type tags
        OnlineAggregate& agg = layer_types_.at(type);
        ++agg.count;
        agg.total_ns += dur;
        if (dur < agg.min_ns) agg.min_ns = dur;
        if (dur > agg.max_ns) agg.max_ns = dur;
        agg.bytes += s.metric_or(keys.alloc_bytes, 0.0);
        agg.est_count += w;
        agg.est_total_ns += w * static_cast<double>(dur);
      } else if (s.level == trace::kKernelLevel && s.kind == SpanKind::kExecution) {
        if (s.tag_or(keys.kind) == keys.kind_memcpy) {
          ++memcpy_spans;
        } else {
          ++kernel_spans;
          kernel_total += dur;
          kernel_hist_.record(dur);
          gpu_busy = dur;
          OnlineAggregate& agg = kernel_cap > 0
                                     ? kernels_.at_capped(s.name, kernel_cap, kernel_evictions_)
                                     : kernels_.at(s.name);
          ++agg.count;
          agg.total_ns += dur;
          if (dur < agg.min_ns) agg.min_ns = dur;
          if (dur > agg.max_ns) agg.max_ns = dur;
          // One pass for both DRAM counters instead of two find()s.
          double dram = 0;
          for (const auto& e : s.metrics) {
            if (e.key == keys.dram_read_bytes || e.key == keys.dram_write_bytes) {
              dram += e.value;
            }
          }
          agg.bytes += dram;
          agg.est_count += w;
          agg.est_total_ns += w * static_cast<double>(dur);
        }
      }
      const std::uint64_t b =
          static_cast<std::uint64_t>(s.end > 0 ? s.end : 0) >> bucket_shift;
      if (b != run_bucket) {
        if (run_spans != 0) record_window_bulk(run_bucket, run_spans, run_gpu);
        run_bucket = b;
        run_spans = 0;
        run_gpu = 0;
      }
      ++run_spans;
      run_gpu += gpu_busy;
    }
  }
  if (run_spans != 0) record_window_bulk(run_bucket, run_spans, run_gpu);
  first_begin_ = first_begin;
  last_end_ = last_end;
  layer_total_ns_ += layer_total;
  kernel_total_ns_ += kernel_total;
  layer_spans_ += layer_spans;
  kernel_spans_ += kernel_spans;
  memcpy_spans_ += memcpy_spans;
  spans_ += observed;
  est_spans_ += est;
  shard_spans_[shard < shard_spans_.size() ? shard : shard_spans_.size() - 1] += observed;
}

void OnlineAnalyzer::set_sampler(std::shared_ptr<const trace::Sampler> sampler) {
  std::lock_guard lk(mu_);
  sampler_ = std::move(sampler);
}

void OnlineAnalyzer::set_sampling_accounting(std::uint64_t kept, std::uint64_t dropped) {
  std::lock_guard lk(mu_);
  sampled_kept_ = kept;
  sampled_dropped_ = dropped;
}

namespace {

/// Descending total time, ties broken lexicographically by key text — the
/// same presentation order the offline analyses use.
void sort_rows(std::vector<OnlineAggregate>& rows) {
  std::sort(rows.begin(), rows.end(), [](const OnlineAggregate& a, const OnlineAggregate& b) {
    if (a.total_ns != b.total_ns) return a.total_ns > b.total_ns;
    return a.key < b.key;
  });
}

}  // namespace

OnlineSnapshot OnlineAnalyzer::snapshot() const {
  OnlineSnapshot snap;
  {
    std::lock_guard lk(mu_);
    snap.spans = spans_;
    snap.batches = batches_;
    snap.layer_spans = layer_spans_;
    snap.kernel_spans = kernel_spans_;
    snap.memcpy_spans = memcpy_spans_;
    snap.first_begin = spans_ > 0 ? first_begin_ : 0;
    snap.last_end = last_end_;
    snap.layer_total_ns = layer_total_ns_;
    snap.kernel_total_ns = kernel_total_ns_;
    snap.layer_types = layer_types_.rows;
    snap.kernels = kernels_.rows;
    snap.layer_p50 = layer_hist_.percentile(50);
    snap.layer_p95 = layer_hist_.percentile(95);
    snap.layer_p99 = layer_hist_.percentile(99);
    snap.kernel_p50 = kernel_hist_.percentile(50);
    snap.kernel_p95 = kernel_hist_.percentile(95);
    snap.kernel_p99 = kernel_hist_.percentile(99);
    snap.window = options_.window;
    const Ns window_start = last_end_ - options_.window;
    std::uint64_t window_spans = 0;
    Ns window_gpu = 0;
    for (const WindowBucket& bucket : window_) {
      if (bucket.epoch == 0) continue;
      const Ns start = static_cast<Ns>(bucket.epoch - 1) * bucket_width_;
      // A bucket counts while any part of it overlaps the window ending
      // at the newest timestamp seen.
      if (start + bucket_width_ > window_start && start <= last_end_) {
        window_spans += bucket.spans;
        window_gpu += bucket.gpu_busy;
      }
    }
    snap.window_spans_per_sec =
        static_cast<double>(window_spans) / to_seconds(options_.window);
    snap.window_gpu_busy_pct =
        100.0 * static_cast<double>(window_gpu) / static_cast<double>(options_.window);
    snap.shard_spans = shard_spans_;
    snap.est_spans = est_spans_;
    snap.sampling_rate = sampler_ != nullptr ? sampler_->options().rate : 1.0;
    snap.sampled_kept = sampled_kept_;
    snap.sampled_dropped = sampled_dropped_;
    snap.kernel_row_limit = options_.max_kernel_rows;
    snap.kernel_evictions = kernel_evictions_;
  }
  snap.gpu_pct = snap.layer_total_ns > 0
                     ? 100.0 * static_cast<double>(snap.kernel_total_ns) /
                           static_cast<double>(snap.layer_total_ns)
                     : 0;
  sort_rows(snap.layer_types);
  sort_rows(snap.kernels);
  const auto& table = common::StringTable::global();
  snap.interned_strings = table.size();
  snap.interned_bytes = table.approx_bytes();
  snap.strtab_budget_bytes = table.budget_bytes();
  snap.rejected_interns = table.rejected_interns();
  return snap;
}

void OnlineAnalyzer::reset() {
  std::lock_guard lk(mu_);
  spans_ = batches_ = layer_spans_ = kernel_spans_ = memcpy_spans_ = 0;
  first_begin_ = std::numeric_limits<Ns>::max();
  last_end_ = 0;
  layer_total_ns_ = kernel_total_ns_ = 0;
  layer_types_.clear();
  kernels_.clear();
  layer_hist_.clear();
  kernel_hist_.clear();
  window_.fill(WindowBucket{});
  std::fill(shard_spans_.begin(), shard_spans_.end(), 0);
  // Sampling state: the accumulators reset; the attached policy survives
  // (reset() forgets history, not configuration).
  est_spans_ = 0;
  sampled_kept_ = 0;
  sampled_dropped_ = 0;
  kernel_evictions_ = 0;
}

// ------------------------------------------------------------------------
// Alerts

AlertId OnlineAnalyzer::add_alert(AlertRule rule, AlertCallback callback) {
  std::lock_guard lk(alert_mu_);
  const AlertId id = next_alert_id_++;
  alerts_.push_back(Alert{id, std::move(rule), std::move(callback), false});
  return id;
}

void OnlineAnalyzer::remove_alert(AlertId id) {
  std::lock_guard lk(alert_mu_);
  alerts_.erase(std::remove_if(alerts_.begin(), alerts_.end(),
                               [id](const Alert& a) { return a.id == id; }),
                alerts_.end());
}

std::size_t OnlineAnalyzer::poll_alerts() {
  // One snapshot per poll: every rule sees the same consistent state, and
  // rule extractors never run under the analyzer's aggregate lock. The
  // fired-latch update holds only alert_mu_; callbacks run after it drops
  // so they may freely call snapshot(), add_alert(), or remove_alert().
  const OnlineSnapshot snap = snapshot();
  struct Firing {
    AlertRule rule;
    AlertCallback callback;
    double value;
  };
  std::vector<Firing> firings;
  {
    std::lock_guard lk(alert_mu_);
    for (Alert& a : alerts_) {
      if (!a.rule.value) continue;
      const double v = a.rule.value(snap);
      const bool crossed = a.rule.fire_above ? v > a.rule.threshold : v < a.rule.threshold;
      if (crossed && !a.fired) {
        a.fired = true;
        firings.push_back(Firing{a.rule, a.callback, v});
      } else if (!crossed && a.fired) {
        a.fired = false;  // recovered: re-arm for the next excursion
      }
    }
  }
  for (const Firing& f : firings) {
    if (f.callback) f.callback(f.rule, f.value, snap);
  }
  return firings.size();
}

// ------------------------------------------------------------------------
// Snapshot helpers

double shard_imbalance(const std::vector<std::uint64_t>& shard_spans) {
  if (shard_spans.empty()) return 0;
  std::uint64_t max = 0;
  std::uint64_t total = 0;
  for (const std::uint64_t v : shard_spans) {
    max = std::max(max, v);
    total += v;
  }
  if (total == 0) return 0;
  const double mean = static_cast<double>(total) / static_cast<double>(shard_spans.size());
  return static_cast<double>(max) / mean;
}

namespace {

// Local JSON emission mirroring the exporter's exactness rules (integers
// exact, doubles shortest-round-trip, strings escaped); kept here so this
// module stays independent of the exporter's internals.

void append_uint(std::string& out, std::uint64_t v) {
  char buf[24];
  const auto r = std::to_chars(buf, buf + sizeof buf, v);
  out.append(buf, r.ptr);
}

void append_int(std::string& out, std::int64_t v) {
  char buf[24];
  const auto r = std::to_chars(buf, buf + sizeof buf, v);
  out.append(buf, r.ptr);
}

void append_double(std::string& out, double v) {
  if (!std::isfinite(v)) {
    out += "null";
    return;
  }
#if defined(__cpp_lib_to_chars)
  char buf[32];
  const auto r = std::to_chars(buf, buf + sizeof buf, v);
  out.append(buf, r.ptr);
#else
  char buf[32];
  out.append(buf, static_cast<std::size_t>(std::snprintf(buf, sizeof buf, "%.17g", v)));
#endif
}

void append_escaped(std::string& out, std::string_view s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      default: {
        const auto u = static_cast<unsigned char>(c);
        if (u < 0x20 || u == 0x7f) {
          constexpr char kHex[] = "0123456789abcdef";
          out += "\\u00";
          out += kHex[u >> 4];
          out += kHex[u & 0xf];
        } else {
          out += c;
        }
      }
    }
  }
  out += '"';
}

void append_rows(std::string& out, const std::vector<OnlineAggregate>& rows,
                 std::size_t max_rows) {
  out += '[';
  const std::size_t n = std::min(rows.size(), max_rows);
  for (std::size_t i = 0; i < n; ++i) {
    const OnlineAggregate& row = rows[i];
    if (i != 0) out += ',';
    out += "{\"key\":";
    append_escaped(out, row.key.view());
    out += ",\"count\":";
    append_uint(out, row.count);
    out += ",\"total_ns\":";
    append_int(out, row.total_ns);
    out += ",\"min_ns\":";
    append_int(out, row.count > 0 ? row.min_ns : 0);
    out += ",\"max_ns\":";
    append_int(out, row.max_ns);
    out += ",\"bytes\":";
    append_double(out, row.bytes);
    out += ",\"est_count\":";
    append_double(out, row.est_count);
    out += ",\"count_error\":";
    append_uint(out, row.count_error);
    out += '}';
  }
  out += ']';
}

}  // namespace

std::string online_summary_json(const OnlineSnapshot& snap, std::size_t max_rows) {
  std::string out;
  out.reserve(1024);
  out += "{\"spans\":";
  append_uint(out, snap.spans);
  out += ",\"batches\":";
  append_uint(out, snap.batches);
  out += ",\"layer_spans\":";
  append_uint(out, snap.layer_spans);
  out += ",\"kernel_spans\":";
  append_uint(out, snap.kernel_spans);
  out += ",\"memcpy_spans\":";
  append_uint(out, snap.memcpy_spans);
  out += ",\"layer_total_ns\":";
  append_int(out, snap.layer_total_ns);
  out += ",\"kernel_total_ns\":";
  append_int(out, snap.kernel_total_ns);
  out += ",\"gpu_pct\":";
  append_double(out, snap.gpu_pct);
  out += ",\"layer_p50_ns\":";
  append_int(out, snap.layer_p50);
  out += ",\"layer_p95_ns\":";
  append_int(out, snap.layer_p95);
  out += ",\"layer_p99_ns\":";
  append_int(out, snap.layer_p99);
  out += ",\"kernel_p50_ns\":";
  append_int(out, snap.kernel_p50);
  out += ",\"kernel_p95_ns\":";
  append_int(out, snap.kernel_p95);
  out += ",\"kernel_p99_ns\":";
  append_int(out, snap.kernel_p99);
  out += ",\"window_ns\":";
  append_int(out, snap.window);
  out += ",\"window_spans_per_sec\":";
  append_double(out, snap.window_spans_per_sec);
  out += ",\"window_gpu_busy_pct\":";
  append_double(out, snap.window_gpu_busy_pct);
  out += ",\"shard_spans\":[";
  for (std::size_t i = 0; i < snap.shard_spans.size(); ++i) {
    if (i != 0) out += ',';
    append_uint(out, snap.shard_spans[i]);
  }
  out += "],\"shard_imbalance\":";
  append_double(out, shard_imbalance(snap.shard_spans));
  out += ",\"est_spans\":";
  append_double(out, snap.est_spans);
  out += ",\"sampling_rate\":";
  append_double(out, snap.sampling_rate);
  out += ",\"sampled_kept\":";
  append_uint(out, snap.sampled_kept);
  out += ",\"sampled_dropped\":";
  append_uint(out, snap.sampled_dropped);
  out += ",\"kernel_evictions\":";
  append_uint(out, snap.kernel_evictions);
  out += ",\"layer_types\":";
  append_rows(out, snap.layer_types, max_rows);
  out += ",\"kernels\":";
  append_rows(out, snap.kernels, max_rows);
  out += '}';
  return out;
}

}  // namespace xsp::analysis
