#include "xsp/analysis/multirun.hpp"

#include <stdexcept>

namespace xsp::analysis {

MultiRunProfile aggregate_runs(std::span<const profile::ModelProfile> profiles,
                               double trim_fraction) {
  if (profiles.empty()) throw std::invalid_argument("aggregate_runs: no profiles");
  const auto& first = profiles.front();
  for (const auto& p : profiles) {
    if (p.layers.size() != first.layers.size() || p.kernels.size() != first.kernels.size()) {
      throw std::invalid_argument("aggregate_runs: profiles have differing structure");
    }
  }

  MultiRunProfile out;
  out.runs = profiles.size();
  out.representative = first;

  std::vector<double> samples;
  samples.reserve(profiles.size());
  const auto summarize_over = [&](auto&& value_of) {
    samples.clear();
    for (const auto& p : profiles) samples.push_back(value_of(p));
    return summarize(samples, trim_fraction);
  };

  out.model_latency_ms =
      summarize_over([](const profile::ModelProfile& p) { return to_ms(p.model_latency); });
  out.representative.model_latency = ms(out.model_latency_ms.trimmed_mean);

  for (std::size_t i = 0; i < first.layers.size(); ++i) {
    LayerStats stats;
    stats.index = first.layers[i].index;
    stats.name = first.layers[i].name.str();
    stats.type = first.layers[i].type.str();
    stats.latency_ms = summarize_over(
        [i](const profile::ModelProfile& p) { return to_ms(p.layers[i].latency); });
    stats.kernel_latency_ms = summarize_over(
        [i](const profile::ModelProfile& p) { return to_ms(p.layers[i].kernel_latency); });
    out.representative.layers[i].latency = ms(stats.latency_ms.trimmed_mean);
    out.representative.layers[i].kernel_latency = ms(stats.kernel_latency_ms.trimmed_mean);
    out.layers.push_back(std::move(stats));
  }

  for (std::size_t i = 0; i < first.kernels.size(); ++i) {
    KernelStats stats;
    stats.name = first.kernels[i].name.str();
    stats.layer_index = first.kernels[i].layer_index;
    stats.latency_ms = summarize_over(
        [i](const profile::ModelProfile& p) { return to_ms(p.kernels[i].latency); });
    out.representative.kernels[i].latency = ms(stats.latency_ms.trimmed_mean);
    out.kernels.push_back(std::move(stats));
  }
  return out;
}

MultiRunProfile profile_n_runs(const profile::LeveledRunner& runner,
                               const framework::Graph& graph, int runs, double timing_jitter,
                               bool gpu_metrics) {
  std::vector<profile::ModelProfile> profiles;
  profiles.reserve(static_cast<std::size_t>(runs));
  for (int i = 0; i < runs; ++i) {
    profiles.push_back(
        runner.run(graph, gpu_metrics, timing_jitter, static_cast<std::uint64_t>(i) + 1)
            .profile);
  }
  return aggregate_runs(profiles);
}

}  // namespace xsp::analysis
