#include "xsp/analysis/batch_sweep.hpp"

namespace xsp::analysis {

std::vector<std::int64_t> batch_grid(std::int64_t max_batch) {
  std::vector<std::int64_t> grid;
  for (std::int64_t b = 1; b <= max_batch; b *= 2) grid.push_back(b);
  return grid;
}

std::vector<BatchPoint> sweep_batches(const profile::LeveledRunner& runner,
                                      const models::ModelInfo& model,
                                      const std::vector<std::int64_t>& batches) {
  std::vector<BatchPoint> points;
  points.reserve(batches.size());
  for (const std::int64_t b : batches) {
    const auto graph = model.build(b, runner.decompose_batchnorm());
    BatchPoint pt;
    pt.batch = b;
    pt.latency_ms = to_ms(runner.model_latency(graph));
    points.push_back(pt);
  }
  return points;
}

ModelInformation model_information(const profile::LeveledRunner& runner,
                                   const models::ModelInfo& model, std::int64_t max_batch) {
  return a1_model_information(sweep_batches(runner, model, batch_grid(max_batch)));
}

}  // namespace xsp::analysis
