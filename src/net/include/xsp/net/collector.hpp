// CollectorService: the ingest engine behind xsp_collectd — many producer
// connections fanned into one SpanSink (in practice a ShardedTraceServer),
// the multi-client intermediary shape of LDN's SOPI design (PAPERS.md).
//
// One poll(2) loop owns everything: the listener plus every connection's
// nonblocking reads. Per connection the service keeps an RxBuffer
// (partial-frame reassembly), a trace::WireDecoder (stream validation +
// per-stream StrId re-interning, so two producers' interned ids can never
// collide after ingest), and lazy span-id/correlation-id remap tables
// that translate each producer's sink-local ids into the server's
// fleet-wide id space. Children publish before parents in the wire
// stream, so the remap allocates on first sight of an id — a forward
// parent reference simply mints the server id early.
//
// Per-connection memory is bounded (the I2PA always-on discipline): the
// RxBuffer never holds more than one maximum frame (hard cap
// max_frame_payload, default wire::kMaxFramePayload) plus a read chunk,
// and decode scratch is reused. Hostile input — bad magic, oversized
// length prefixes, unknown string ids, absurd annotation counts — throws
// WireError inside the per-connection decode, which closes that
// connection and increments connections_errored; the daemon itself never
// dies from a client's bytes.
//
// Lifecycle: run() blocks until stop() (SIGTERM handlers just call
// stop(); it is an atomic store). Stopping enters a graceful drain: the
// listener closes, existing connections keep draining until EOF/footer or
// drain_timeout_ms, then the loop returns — the daemon half of the drain
// protocol in src/trace/README.md (a producer's shutdown_write is "stream
// complete"; our close after consuming everything is the ack).
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "xsp/net/endpoint.hpp"
#include "xsp/net/socket.hpp"
#include "xsp/trace/span_sink.hpp"
#include "xsp/trace/wire.hpp"

namespace xsp::net {

struct CollectorOptions {
  /// Hard per-connection bound on one frame's payload (and with it the
  /// reassembly buffer). Streams exceeding it are treated as hostile.
  std::size_t max_frame_payload = trace::wire::kMaxFramePayload;
  /// Bytes per read(2) into the reassembly buffer.
  std::size_t read_chunk = 64 * 1024;
  /// Poll granularity — the latency bound on noticing stop().
  int poll_timeout_ms = 50;
  /// How long a graceful drain waits for connected producers to finish.
  int drain_timeout_ms = 5000;
};

/// Monotonic ingest counters, snapshot via CollectorService::stats().
struct CollectorStats {
  std::uint64_t connections_accepted = 0;
  /// Clean closes: footer seen, or EOF at a frame boundary.
  std::uint64_t connections_closed = 0;
  /// Protocol violations (WireError) and mid-frame disconnects.
  std::uint64_t connections_errored = 0;
  std::uint64_t bytes_received = 0;
  std::uint64_t spans_ingested = 0;
  std::uint64_t strings_reinterned = 0;
  std::uint64_t footers_seen = 0;
  /// Summed from producer footers: spans the *producers* dropped before
  /// the bytes ever reached us, and their reconnect counts — the fleet's
  /// completeness story in two numbers.
  std::uint64_t producer_dropped_spans = 0;
  std::uint64_t producer_reconnects = 0;
};

class CollectorService {
 public:
  /// Binds and listens immediately (so endpoint() reports the resolved
  /// ephemeral port before run() is entered); throws NetError on bind
  /// failure. `sink` must outlive the service.
  CollectorService(const Endpoint& endpoint, trace::SpanSink& sink,
                   CollectorOptions options = {});
  ~CollectorService();

  CollectorService(const CollectorService&) = delete;
  CollectorService& operator=(const CollectorService&) = delete;

  /// Accept/ingest until stop(), then drain gracefully. Call from one
  /// thread (the daemon's main thread, or a test's service thread).
  void run();

  /// Request shutdown + drain. Thread-safe; callable from a signal
  /// handler (plain atomic store).
  void stop() noexcept { stop_.store(true, std::memory_order_relaxed); }

  /// The endpoint actually bound (TCP port resolved if 0 was requested).
  [[nodiscard]] const Endpoint& endpoint() const;

  [[nodiscard]] CollectorStats stats() const;
  [[nodiscard]] std::size_t open_connections() const;

 private:
  struct Connection;

  void accept_pending();
  /// Read + parse one connection; returns false when it should be closed.
  bool service_connection(Connection& conn);
  /// Parse all complete frames in the rx buffer. Throws WireError.
  void parse_frames(Connection& conn);
  void ingest_batch(Connection& conn);
  void close_connection(std::size_t index);

  trace::SpanSink& sink_;
  CollectorOptions opts_;
  std::unique_ptr<Listener> listener_;
  std::vector<std::unique_ptr<Connection>> conns_;
  std::atomic<bool> stop_{false};

  mutable std::mutex stats_mu_;
  CollectorStats stats_;
  std::atomic<std::size_t> open_conns_{0};
};

}  // namespace xsp::net
