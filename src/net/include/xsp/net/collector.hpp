// CollectorService: the ingest engine behind xsp_collectd — many producer
// connections fanned into one SpanSink (in practice a ShardedTraceServer),
// the multi-client intermediary shape of LDN's SOPI design (PAPERS.md).
//
// One poll(2) loop owns everything: the listener plus every connection's
// nonblocking reads. Per connection the service keeps an RxBuffer
// (partial-frame reassembly), a trace::WireDecoder (stream validation +
// per-stream StrId re-interning, so two producers' interned ids can never
// collide after ingest), and lazy span-id/correlation-id remap tables
// that translate each producer's sink-local ids into the server's
// fleet-wide id space. Children publish before parents in the wire
// stream, so the remap allocates on first sight of an id — a forward
// parent reference simply mints the server id early.
//
// Per-connection memory is bounded (the I2PA always-on discipline): the
// RxBuffer never holds more than one maximum frame (hard cap
// max_frame_payload, default wire::kMaxFramePayload) plus a read chunk,
// and decode scratch is reused. Hostile input — bad magic, oversized
// length prefixes, unknown string ids, absurd annotation counts — throws
// WireError inside the per-connection decode, which closes that
// connection and increments connections_errored; the daemon itself never
// dies from a client's bytes.
//
// Lifecycle: run() blocks until stop() (SIGTERM handlers just call
// stop(); it is an atomic store). Stopping enters a graceful drain: the
// listener closes, existing connections keep draining until EOF/footer or
// drain_timeout_ms, then the loop returns — the daemon half of the drain
// protocol in src/trace/README.md (a producer's shutdown_write is "stream
// complete"; our close after consuming everything is the ack).
//
// Self-metrics: when CollectorOptions::metrics_endpoint is set, a second
// listener on the *same* poll loop serves `GET /metrics` (Prometheus text
// exposition) and `GET /healthz` — no extra threads, and no locking for
// the per-connection series because the scrape is built on the run()
// thread that owns them. The exposition covers the service's own ingest
// counters (xsp_ingested_spans_total and friends), one series per open
// producer connection (bytes/frames/spans, labeled by accept id), the
// producer-health counters carried by wire v3 Heartbeat frames (publish/
// drop/outbox/reconnects as the *producer* counts them, plus heartbeat
// age and a staleness flag), and finally whatever registry the embedding
// daemon wired in (the sink's own xsp_trace_* series).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "xsp/metrics/registry.hpp"
#include "xsp/net/endpoint.hpp"
#include "xsp/net/http.hpp"
#include "xsp/net/socket.hpp"
#include "xsp/trace/span_sink.hpp"
#include "xsp/trace/wire.hpp"

namespace xsp::net {

struct CollectorOptions {
  /// Hard per-connection bound on one frame's payload (and with it the
  /// reassembly buffer). Streams exceeding it are treated as hostile.
  std::size_t max_frame_payload = trace::wire::kMaxFramePayload;
  /// Bytes per read(2) into the reassembly buffer.
  std::size_t read_chunk = 64 * 1024;
  /// Poll granularity — the latency bound on noticing stop().
  int poll_timeout_ms = 50;
  /// How long a graceful drain waits for connected producers to finish.
  int drain_timeout_ms = 5000;
  /// URI of the HTTP self-metrics endpoint ("tcp://127.0.0.1:9464" or
  /// "unix:/run/xsp-metrics.sock"); empty disables it. Served from the
  /// run() poll loop — no additional threads.
  std::string metrics_endpoint;
  /// Extra series appended to /metrics after the service's own (the
  /// daemon registers its sink's series here). May be null; must outlive
  /// the service when set.
  metrics::Registry* registry = nullptr;
  /// A producer whose heartbeats stop for longer than this while its
  /// connection stays open is flagged stale (xsp_producer_stale = 1).
  /// Applies only to connections that have sent at least one heartbeat —
  /// v1/v2 producers never do and are never flagged. <= 0 disables.
  int heartbeat_stale_ms = 5000;
};

/// Monotonic ingest counters, snapshot via CollectorService::stats().
struct CollectorStats {
  std::uint64_t connections_accepted = 0;
  /// Clean closes: footer seen, or EOF at a frame boundary.
  std::uint64_t connections_closed = 0;
  /// Protocol violations (WireError) and mid-frame disconnects.
  std::uint64_t connections_errored = 0;
  std::uint64_t bytes_received = 0;
  std::uint64_t spans_ingested = 0;
  std::uint64_t strings_reinterned = 0;
  std::uint64_t footers_seen = 0;
  /// Wire frames fully parsed across all connections (all types).
  std::uint64_t frames_parsed = 0;
  /// Wire v3 Heartbeat frames ingested (producer liveness beacons).
  std::uint64_t heartbeats_seen = 0;
  /// HTTP requests answered on the metrics endpoint (any status).
  std::uint64_t http_requests = 0;
  /// Of http_requests: non-200 responses plus dropped hostile requests.
  std::uint64_t http_errors = 0;
  /// Summed from producer footers: spans the *producers* dropped before
  /// the bytes ever reached us, and their reconnect counts — the fleet's
  /// completeness story in two numbers.
  std::uint64_t producer_dropped_spans = 0;
  std::uint64_t producer_reconnects = 0;
};

class CollectorService {
 public:
  /// Binds and listens immediately (so endpoint() reports the resolved
  /// ephemeral port before run() is entered); throws NetError on bind
  /// failure. `sink` must outlive the service.
  CollectorService(const Endpoint& endpoint, trace::SpanSink& sink,
                   CollectorOptions options = {});
  ~CollectorService();

  CollectorService(const CollectorService&) = delete;
  CollectorService& operator=(const CollectorService&) = delete;

  /// Accept/ingest until stop(), then drain gracefully. Call from one
  /// thread (the daemon's main thread, or a test's service thread).
  void run();

  /// Request shutdown + drain. Thread-safe; callable from a signal
  /// handler (plain atomic store).
  void stop() noexcept { stop_.store(true, std::memory_order_relaxed); }

  /// The endpoint actually bound (TCP port resolved if 0 was requested).
  [[nodiscard]] const Endpoint& endpoint() const;

  /// The HTTP metrics endpoint actually bound, or nullptr when
  /// CollectorOptions::metrics_endpoint was empty.
  [[nodiscard]] const Endpoint* metrics_endpoint() const;

  [[nodiscard]] CollectorStats stats() const;
  [[nodiscard]] std::size_t open_connections() const;

 private:
  struct Connection;
  struct HttpConn;

  void accept_pending();
  /// Read + parse one connection; returns false when it should be closed.
  bool service_connection(Connection& conn);
  /// Parse all complete frames in the rx buffer. Throws WireError.
  void parse_frames(Connection& conn);
  void ingest_batch(Connection& conn);
  void close_connection(std::size_t index);

  void accept_http(Poller& poller);
  /// Progress one HTTP connection; returns false when it should close.
  bool service_http(Poller& poller, HttpConn& hc, const Poller::Event& ev);
  /// Route a parsed request to its response bytes. Run() thread only.
  [[nodiscard]] std::string respond(const HttpRequest& req);
  /// Append the full Prometheus exposition: service counters, per-
  /// connection/producer series, then opts_.registry. Run() thread only.
  void build_metrics_text(std::string& out);

  trace::SpanSink& sink_;
  CollectorOptions opts_;
  std::unique_ptr<Listener> listener_;
  std::vector<std::unique_ptr<Connection>> conns_;
  std::atomic<bool> stop_{false};

  /// HTTP responder state (run() thread only past construction).
  std::unique_ptr<Listener> http_listener_;
  std::vector<std::unique_ptr<HttpConn>> http_conns_;
  std::string scrape_buf_;  ///< reused across scrapes
  std::uint64_t next_conn_id_ = 1;

  mutable std::mutex stats_mu_;
  CollectorStats stats_;
  std::atomic<std::size_t> open_conns_{0};
};

}  // namespace xsp::net
