// Minimal HTTP/1.0 request parsing + response building for the collector's
// self-metrics endpoint (`GET /metrics`, `GET /healthz`).
//
// This is deliberately not a web server: it parses exactly enough of a
// request head (method + path, headers ignored) to dispatch a scrape, with
// hard bounds so hostile clients stay connection-local:
//   * the request head is capped at kMaxHttpRequestBytes — an oversized
//     request line or header block turns into a parse error, never
//     unbounded buffering,
//   * parsing is incremental (feed() accepts whatever the socket produced),
//     so a slowloris client that dribbles bytes just owns one idle
//     connection on the poll loop — it never blocks other clients or the
//     ingest path,
//   * responses always close the connection (`Connection: close`), keeping
//     the endpoint stateless per request.
#pragma once

#include <cstddef>
#include <string>
#include <string_view>

namespace xsp::net {

/// Upper bound on one request head (request line + headers). More than
/// this without a blank line is hostile input.
inline constexpr std::size_t kMaxHttpRequestBytes = 8 * 1024;

struct HttpRequest {
  std::string method;  // e.g. "GET" — token as sent, not normalized
  std::string path;    // e.g. "/metrics" — path as sent, query included
};

/// Incremental request-head parser. Feed socket bytes as they arrive;
/// state machine: kNeedMore -> kComplete | kError (both terminal).
class HttpRequestParser {
 public:
  enum class Status { kNeedMore, kComplete, kError };

  /// Consume `bytes`. Returns the parser status after this chunk. Bytes
  /// past the end of the request head are ignored (responses close the
  /// connection, so there is no pipelining to honor).
  Status feed(std::string_view bytes);

  [[nodiscard]] Status status() const noexcept { return status_; }
  /// Valid once status() == kComplete.
  [[nodiscard]] const HttpRequest& request() const noexcept { return req_; }
  /// Human-readable reason, valid once status() == kError.
  [[nodiscard]] const char* error() const noexcept { return error_; }

 private:
  Status fail(const char* reason) noexcept {
    status_ = Status::kError;
    error_ = reason;
    return status_;
  }

  std::string buf_;
  HttpRequest req_;
  Status status_ = Status::kNeedMore;
  const char* error_ = "";
};

/// Build a full HTTP/1.0 response with Content-Length and
/// `Connection: close`.
[[nodiscard]] std::string http_response(int status_code, std::string_view content_type,
                                        std::string_view body);

/// Reason phrase for the handful of status codes the endpoint emits.
[[nodiscard]] std::string_view http_status_reason(int status_code);

}  // namespace xsp::net
