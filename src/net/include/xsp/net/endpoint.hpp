// Endpoint: the two transport addresses the collector speaks.
//
// Trace producers and xsp_collectd rendezvous over either a Unix-domain
// socket ("unix:/run/xsp.sock") — the default for same-host fleets, no
// port allocation, filesystem permissions for access control — or TCP
// ("tcp://host:port") when producers live on other machines. The URI
// grammar is deliberately tiny: two schemes, no query strings, no IPv6
// bracket syntax until something needs it. Parsing happens once at
// startup on both sides, so errors throw (NetError) rather than return.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace xsp::net {

struct Endpoint {
  enum class Kind : std::uint8_t { kUnix, kTcp };

  Kind kind = Kind::kUnix;
  std::string path;  // kUnix: filesystem path of the socket
  std::string host;  // kTcp: hostname or numeric address
  std::uint16_t port = 0;

  /// Parse "unix:/path/to.sock" or "tcp://host:port". Throws NetError on
  /// malformed input (unknown scheme, empty path, bad port, UDS path too
  /// long for sockaddr_un).
  static Endpoint parse(std::string_view uri);

  /// Canonical URI form (inverse of parse()).
  [[nodiscard]] std::string uri() const;

  friend bool operator==(const Endpoint& a, const Endpoint& b) {
    return a.kind == b.kind && a.path == b.path && a.host == b.host &&
           a.port == b.port;
  }
};

}  // namespace xsp::net
