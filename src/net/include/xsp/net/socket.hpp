// Nonblocking sockets, a listener, and a poll(2) wrapper — the event-loop
// substrate under xsp_collectd and trace::RemoteSink.
//
// Scope is deliberately small: the collector serves tens of producer
// connections, not tens of thousands, so poll(2) over a rebuilt pollfd
// vector beats dragging in epoll's lifecycle (and stays portable to the
// BSDs/macOS where CI might land). Everything is nonblocking; blocking
// behaviour is composed from poll + retry at the call site, which keeps
// cancellation (drain on SIGTERM, sender-thread shutdown) a matter of
// poll timeouts instead of signals interrupting reads.
//
// Error philosophy: setup errors (bind, listen, bad endpoint) throw
// NetError — they happen once and mean misconfiguration. Steady-state I/O
// returns IoResult — peers disconnecting is normal operation for a
// daemon, not an exception.
#pragma once

#include <cstddef>
#include <stdexcept>
#include <string>
#include <string_view>
#include <vector>

#include "xsp/net/endpoint.hpp"

namespace xsp::net {

class NetError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Outcome of a nonblocking read/write.
enum class IoResult {
  kOk,          // >= 1 byte transferred
  kWouldBlock,  // no progress possible now; poll and retry
  kClosed,      // orderly EOF (read) — peer finished
  kError,       // connection is dead (ECONNRESET, EPIPE, ...)
};

/// RAII file-descriptor wrapper. Move-only; closes on destruction.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  Socket(Socket&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;
  ~Socket() { close(); }

  [[nodiscard]] bool valid() const { return fd_ >= 0; }
  [[nodiscard]] int fd() const { return fd_; }
  void close();

  /// Half-close: signal EOF to the peer while still able to read. Used by
  /// producers to say "stream complete" before waiting for the daemon to
  /// drain.
  void shutdown_write();

  /// Nonblocking read into [buf, buf+cap). n receives bytes read (only
  /// meaningful for kOk).
  IoResult read_some(char* buf, std::size_t cap, std::size_t& n);

  /// Nonblocking write of [data, data+len). n receives bytes accepted
  /// (only meaningful for kOk; may be < len). Never raises SIGPIPE.
  IoResult write_some(const char* data, std::size_t len, std::size_t& n);

  /// Block (via poll) until the fd is readable/writable or timeout_ms
  /// elapses. Returns false on timeout. timeout_ms < 0 waits forever.
  bool wait_readable(int timeout_ms) const;
  bool wait_writable(int timeout_ms) const;

 private:
  int fd_ = -1;
};

/// Connect to an endpoint with a bounded wait. Returns an invalid Socket
/// on failure and, if `error` is non-null, stores a description — failure
/// to connect is routine for RemoteSink's reconnect loop, not exceptional.
/// The returned socket is nonblocking.
Socket try_connect(const Endpoint& ep, int timeout_ms,
                   std::string* error = nullptr);

/// Bound + listening socket for either endpoint kind. UDS paths are
/// unlinked before bind (stale socket files from a killed daemon) and on
/// destruction. TCP listeners set SO_REUSEADDR; binding port 0 picks an
/// ephemeral port, visible via endpoint().port.
class Listener {
 public:
  explicit Listener(const Endpoint& ep, int backlog = 64);
  ~Listener();
  Listener(const Listener&) = delete;
  Listener& operator=(const Listener&) = delete;

  /// Accept one pending connection (nonblocking): invalid Socket when
  /// none is waiting. The returned socket is nonblocking.
  Socket accept();

  [[nodiscard]] int fd() const { return sock_.fd(); }
  /// The endpoint actually bound (TCP port resolved if 0 was requested).
  [[nodiscard]] const Endpoint& endpoint() const { return ep_; }

 private:
  Endpoint ep_;
  Socket sock_;
};

/// Thin poll(2) wrapper: a watch set keyed by fd, rebuilt into a pollfd
/// vector per wait. O(n) per tick is the right trade at collector scale.
class Poller {
 public:
  enum Interest : short { kReadable = 1, kWritable = 2 };

  struct Event {
    int fd = -1;
    bool readable = false;
    bool writable = false;
    bool hangup = false;  // POLLHUP/POLLERR/POLLNVAL — treat as dead
  };

  /// Add or update the interest set for fd.
  void watch(int fd, short interest);
  void forget(int fd);
  [[nodiscard]] std::size_t watched() const { return watches_.size(); }

  /// Poll once. timeout_ms < 0 waits forever. Returns ready events
  /// (empty on timeout). The returned reference is invalidated by the
  /// next wait().
  const std::vector<Event>& wait(int timeout_ms);

 private:
  struct Watch {
    int fd;
    short interest;
  };
  std::vector<Watch> watches_;
  std::vector<Event> events_;
};

/// Reassembly buffer for length-prefixed frames arriving in arbitrary
/// chunks. Appending is amortized O(1); consume() advances a read offset
/// and compacts only once the dead prefix dominates, so a connection
/// trickling one byte per poll tick never triggers quadratic memmove.
class RxBuffer {
 public:
  void append(std::string_view bytes);
  /// All buffered-but-unconsumed bytes, contiguous.
  [[nodiscard]] std::string_view data() const {
    return std::string_view(buf_).substr(off_);
  }
  [[nodiscard]] std::size_t size() const { return buf_.size() - off_; }
  void consume(std::size_t n);
  void clear() {
    buf_.clear();
    off_ = 0;
  }

 private:
  std::string buf_;
  std::size_t off_ = 0;
};

}  // namespace xsp::net
