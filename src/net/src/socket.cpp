#include "xsp/net/socket.hpp"

#include <fcntl.h>
#include <netdb.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace xsp::net {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
  throw NetError(what + ": " + std::strerror(errno));
}

void set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0)
    throw_errno("fcntl(O_NONBLOCK)");
}

void set_cloexec(int fd) {
  // Producer processes fork/exec freely (the CI harness does); leaking the
  // collector connection into children would hold connections open past
  // producer exit and wedge drain accounting.
  (void)::fcntl(fd, F_SETFD, FD_CLOEXEC);
}

sockaddr_un make_unix_addr(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  // Length was validated by Endpoint::parse.
  std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
  return addr;
}

struct ResolvedAddr {
  sockaddr_storage storage{};
  socklen_t len = 0;
  int family = AF_UNSPEC;
};

ResolvedAddr resolve_tcp(const std::string& host, std::uint16_t port,
                         bool for_bind, std::string* error) {
  addrinfo hints{};
  hints.ai_family = AF_UNSPEC;
  hints.ai_socktype = SOCK_STREAM;
  if (for_bind) hints.ai_flags = AI_PASSIVE;
  addrinfo* res = nullptr;
  const std::string port_str = std::to_string(port);
  const int rc = ::getaddrinfo(host.empty() ? nullptr : host.c_str(),
                               port_str.c_str(), &hints, &res);
  ResolvedAddr out;
  if (rc != 0) {
    if (error)
      *error = "resolve '" + host + "': " + ::gai_strerror(rc);
    return out;
  }
  std::memcpy(&out.storage, res->ai_addr, res->ai_addrlen);
  out.len = static_cast<socklen_t>(res->ai_addrlen);
  out.family = res->ai_family;
  ::freeaddrinfo(res);
  return out;
}

bool poll_one(int fd, short events, int timeout_ms) {
  pollfd pfd{fd, events, 0};
  for (;;) {
    const int rc = ::poll(&pfd, 1, timeout_ms);
    if (rc > 0) return true;
    if (rc == 0) return false;
    if (errno != EINTR) return false;
  }
}

}  // namespace

// --- Socket ----------------------------------------------------------------

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    other.fd_ = -1;
  }
  return *this;
}

void Socket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Socket::shutdown_write() {
  if (fd_ >= 0) (void)::shutdown(fd_, SHUT_WR);
}

IoResult Socket::read_some(char* buf, std::size_t cap, std::size_t& n) {
  n = 0;
  for (;;) {
    const ssize_t rc = ::recv(fd_, buf, cap, 0);
    if (rc > 0) {
      n = static_cast<std::size_t>(rc);
      return IoResult::kOk;
    }
    if (rc == 0) return IoResult::kClosed;
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return IoResult::kWouldBlock;
    return IoResult::kError;
  }
}

IoResult Socket::write_some(const char* data, std::size_t len, std::size_t& n) {
  n = 0;
  for (;;) {
    const ssize_t rc = ::send(fd_, data, len, MSG_NOSIGNAL);
    if (rc >= 0) {
      n = static_cast<std::size_t>(rc);
      return n > 0 ? IoResult::kOk : IoResult::kWouldBlock;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return IoResult::kWouldBlock;
    return IoResult::kError;
  }
}

bool Socket::wait_readable(int timeout_ms) const {
  return poll_one(fd_, POLLIN, timeout_ms);
}

bool Socket::wait_writable(int timeout_ms) const {
  return poll_one(fd_, POLLOUT, timeout_ms);
}

// --- try_connect -----------------------------------------------------------

Socket try_connect(const Endpoint& ep, int timeout_ms, std::string* error) {
  int fd = -1;
  sockaddr_storage storage{};
  socklen_t addr_len = 0;
  if (ep.kind == Endpoint::Kind::kUnix) {
    fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
      if (error) *error = std::string("socket: ") + std::strerror(errno);
      return Socket();
    }
    const sockaddr_un addr = make_unix_addr(ep.path);
    std::memcpy(&storage, &addr, sizeof(addr));
    addr_len = sizeof(addr);
  } else {
    const ResolvedAddr resolved =
        resolve_tcp(ep.host, ep.port, /*for_bind=*/false, error);
    if (resolved.len == 0) return Socket();
    fd = ::socket(resolved.family, SOCK_STREAM, 0);
    if (fd < 0) {
      if (error) *error = std::string("socket: ") + std::strerror(errno);
      return Socket();
    }
    storage = resolved.storage;
    addr_len = resolved.len;
  }

  Socket sock(fd);
  set_cloexec(fd);
  try {
    set_nonblocking(fd);
  } catch (const NetError& e) {
    if (error) *error = e.what();
    return Socket();
  }

  const int rc =
      ::connect(fd, reinterpret_cast<const sockaddr*>(&storage), addr_len);
  if (rc != 0 && errno != EINPROGRESS) {
    if (error) *error = std::string("connect ") + ep.uri() + ": " +
                        std::strerror(errno);
    return Socket();
  }
  if (rc != 0) {
    // Nonblocking connect in flight: writable means settled, then the
    // verdict lives in SO_ERROR.
    if (!poll_one(fd, POLLOUT, timeout_ms)) {
      if (error) *error = "connect " + ep.uri() + ": timed out";
      return Socket();
    }
    int so_error = 0;
    socklen_t len = sizeof(so_error);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &so_error, &len) != 0 ||
        so_error != 0) {
      if (error) *error = "connect " + ep.uri() + ": " +
                          std::strerror(so_error != 0 ? so_error : errno);
      return Socket();
    }
  }
  if (ep.kind == Endpoint::Kind::kTcp) {
    const int one = 1;
    (void)::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  }
  return sock;
}

// --- Listener --------------------------------------------------------------

Listener::Listener(const Endpoint& ep, int backlog) : ep_(ep) {
  if (ep_.kind == Endpoint::Kind::kUnix) {
    const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) throw_errno("socket(AF_UNIX)");
    sock_ = Socket(fd);
    // A daemon killed with SIGKILL leaves its socket file behind; a fresh
    // bind would fail with EADDRINUSE forever. Remove the stale path —
    // anyone still connected to the old inode keeps their connection.
    (void)::unlink(ep_.path.c_str());
    const sockaddr_un addr = make_unix_addr(ep_.path);
    if (::bind(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
        0)
      throw_errno("bind " + ep_.uri());
  } else {
    std::string error;
    const ResolvedAddr resolved =
        resolve_tcp(ep_.host, ep_.port, /*for_bind=*/true, &error);
    if (resolved.len == 0) throw NetError("listen: " + error);
    const int fd = ::socket(resolved.family, SOCK_STREAM, 0);
    if (fd < 0) throw_errno("socket(TCP)");
    sock_ = Socket(fd);
    const int one = 1;
    (void)::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    if (::bind(fd, reinterpret_cast<const sockaddr*>(&resolved.storage),
               resolved.len) != 0)
      throw_errno("bind " + ep_.uri());
    if (ep_.port == 0) {
      // Report the kernel-assigned ephemeral port so tests can connect.
      sockaddr_storage bound{};
      socklen_t len = sizeof(bound);
      if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) == 0) {
        if (bound.ss_family == AF_INET)
          ep_.port = ntohs(reinterpret_cast<sockaddr_in*>(&bound)->sin_port);
        else if (bound.ss_family == AF_INET6)
          ep_.port = ntohs(reinterpret_cast<sockaddr_in6*>(&bound)->sin6_port);
      }
    }
  }
  set_cloexec(sock_.fd());
  set_nonblocking(sock_.fd());
  if (::listen(sock_.fd(), backlog) != 0) throw_errno("listen " + ep_.uri());
}

Listener::~Listener() {
  if (ep_.kind == Endpoint::Kind::kUnix && sock_.valid())
    (void)::unlink(ep_.path.c_str());
}

Socket Listener::accept() {
  for (;;) {
    const int fd = ::accept(sock_.fd(), nullptr, nullptr);
    if (fd >= 0) {
      Socket conn(fd);
      set_cloexec(fd);
      set_nonblocking(fd);
      return conn;
    }
    if (errno == EINTR) continue;
    // EAGAIN (nothing pending) and transient per-connection failures
    // (ECONNABORTED: peer gave up while queued) both mean "no connection
    // right now" to the accept loop.
    return Socket();
  }
}

// --- Poller ----------------------------------------------------------------

void Poller::watch(int fd, short interest) {
  for (Watch& w : watches_) {
    if (w.fd == fd) {
      w.interest = interest;
      return;
    }
  }
  watches_.push_back(Watch{fd, interest});
}

void Poller::forget(int fd) {
  for (std::size_t i = 0; i < watches_.size(); ++i) {
    if (watches_[i].fd == fd) {
      watches_[i] = watches_.back();
      watches_.pop_back();
      return;
    }
  }
}

const std::vector<Poller::Event>& Poller::wait(int timeout_ms) {
  events_.clear();
  std::vector<pollfd> pfds;
  pfds.reserve(watches_.size());
  for (const Watch& w : watches_) {
    short ev = 0;
    if (w.interest & kReadable) ev |= POLLIN;
    if (w.interest & kWritable) ev |= POLLOUT;
    pfds.push_back(pollfd{w.fd, ev, 0});
  }
  int rc;
  do {
    rc = ::poll(pfds.data(), pfds.size(), timeout_ms);
  } while (rc < 0 && errno == EINTR);
  if (rc <= 0) return events_;
  for (const pollfd& p : pfds) {
    if (p.revents == 0) continue;
    Event e;
    e.fd = p.fd;
    e.readable = (p.revents & POLLIN) != 0;
    e.writable = (p.revents & POLLOUT) != 0;
    e.hangup = (p.revents & (POLLHUP | POLLERR | POLLNVAL)) != 0;
    events_.push_back(e);
  }
  return events_;
}

// --- RxBuffer --------------------------------------------------------------

void RxBuffer::append(std::string_view bytes) {
  // Compact before growing once the dead prefix is both sizable and the
  // majority of storage; otherwise appends just extend the string.
  if (off_ > 4096 && off_ > buf_.size() - off_) {
    buf_.erase(0, off_);
    off_ = 0;
  }
  buf_.append(bytes.data(), bytes.size());
}

void RxBuffer::consume(std::size_t n) {
  off_ += n;
  if (off_ >= buf_.size()) {
    buf_.clear();
    off_ = 0;
  }
}

}  // namespace xsp::net
