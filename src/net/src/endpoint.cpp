#include "xsp/net/endpoint.hpp"

#include <sys/un.h>

#include <charconv>

#include "xsp/net/socket.hpp"

namespace xsp::net {

namespace {

constexpr std::string_view kUnixScheme = "unix:";
constexpr std::string_view kTcpScheme = "tcp://";

// sockaddr_un::sun_path is a fixed array (typically 108 bytes including
// the NUL); reject at parse time so bind never truncates silently.
constexpr std::size_t kMaxUnixPath = sizeof(sockaddr_un{}.sun_path) - 1;

}  // namespace

Endpoint Endpoint::parse(std::string_view uri) {
  Endpoint ep;
  if (uri.substr(0, kUnixScheme.size()) == kUnixScheme) {
    ep.kind = Kind::kUnix;
    std::string_view path = uri.substr(kUnixScheme.size());
    // Tolerate the three-slash URI form ("unix:///run/x.sock").
    if (path.substr(0, 2) == "//") path.remove_prefix(2);
    if (path.empty())
      throw NetError("endpoint: empty unix socket path in '" +
                     std::string(uri) + "'");
    if (path.size() > kMaxUnixPath)
      throw NetError("endpoint: unix socket path exceeds " +
                     std::to_string(kMaxUnixPath) + " bytes: '" +
                     std::string(path) + "'");
    ep.path = std::string(path);
    return ep;
  }
  if (uri.substr(0, kTcpScheme.size()) == kTcpScheme) {
    ep.kind = Kind::kTcp;
    const std::string_view rest = uri.substr(kTcpScheme.size());
    const std::size_t colon = rest.rfind(':');
    if (colon == std::string_view::npos || colon == 0 ||
        colon + 1 == rest.size())
      throw NetError("endpoint: expected tcp://host:port, got '" +
                     std::string(uri) + "'");
    ep.host = std::string(rest.substr(0, colon));
    const std::string_view port_sv = rest.substr(colon + 1);
    unsigned port = 0;
    const auto [ptr, ec] =
        std::from_chars(port_sv.data(), port_sv.data() + port_sv.size(), port);
    if (ec != std::errc{} || ptr != port_sv.data() + port_sv.size() ||
        port > 65535)
      throw NetError("endpoint: bad port '" + std::string(port_sv) + "' in '" +
                     std::string(uri) + "'");
    ep.port = static_cast<std::uint16_t>(port);
    return ep;
  }
  throw NetError(
      "endpoint: unknown scheme in '" + std::string(uri) +
      "' (expected unix:/path or tcp://host:port)");
}

std::string Endpoint::uri() const {
  if (kind == Kind::kUnix) return "unix:" + path;
  return "tcp://" + host + ":" + std::to_string(port);
}

}  // namespace xsp::net
