#include "xsp/net/collector.hpp"

#include <chrono>
#include <cstring>
#include <string_view>
#include <utility>

#include "xsp/common/string_table.hpp"

namespace xsp::net {

namespace {

using trace::Span;
using trace::SpanId;
using trace::WireError;
namespace wire = trace::wire;

using Clock = std::chrono::steady_clock;

/// `conn="<id>"` — the label every per-connection series carries. Digits
/// need no exposition escaping, so this skips the interned-label path.
std::string conn_label(std::uint64_t id) {
  return "conn=\"" + std::to_string(id) + "\"";
}

}  // namespace

/// Per-connection ingest state. Everything here is touched only by the
/// run() thread.
struct CollectorService::Connection {
  Socket sock;
  RxBuffer rx;
  trace::WireDecoder decoder;
  /// Producer-local span id -> server-wide id, allocated lazily so a
  /// child's forward reference to a not-yet-published parent mints the
  /// parent's server id early and the later parent span reuses it.
  std::unordered_map<SpanId, SpanId> span_remap;
  std::unordered_map<std::uint64_t, std::uint64_t> corr_remap;
  trace::SpanBatch scratch;
  /// Stream format version from the validated header; sizes the footer
  /// frame (wire::footer_size) so v1 producers keep working against a v2
  /// daemon.
  std::uint16_t version = wire::kVersion;
  bool got_header = false;
  bool done = false;     ///< footer seen; only EOF is acceptable after
  bool errored = false;  ///< hostile input or mid-frame disconnect

  // --- self-metrics (per-connection series on /metrics) ---
  std::uint64_t id = 0;  ///< monotonic accept id, the `conn` label
  std::uint64_t bytes = 0;
  std::uint64_t frames = 0;
  std::uint64_t spans = 0;
  /// Latest producer heartbeat (wire v3). got_heartbeat gates the
  /// xsp_producer_* series: v1/v2 producers never send one and expose
  /// nothing rather than zeros.
  bool got_heartbeat = false;
  wire::Heartbeat hb{};
  Clock::time_point last_hb{};

  explicit Connection(Socket s) : sock(std::move(s)) {}
};

/// One metrics-endpoint client. Request heads are parsed incrementally
/// (HttpRequestParser bounds the buffering), the response is buffered and
/// written as the socket accepts it, and the connection always closes
/// after one exchange — hostile clients cost one poll-loop slot, nothing
/// more.
struct CollectorService::HttpConn {
  Socket sock;
  HttpRequestParser parser;
  std::string tx;          ///< response bytes once dispatched
  std::size_t tx_off = 0;  ///< bytes of tx already written
  bool responding = false;

  explicit HttpConn(Socket s) : sock(std::move(s)) {}
};

CollectorService::CollectorService(const Endpoint& endpoint,
                                   trace::SpanSink& sink,
                                   CollectorOptions options)
    : sink_(sink),
      opts_(std::move(options)),
      listener_(std::make_unique<Listener>(endpoint)) {
  if (!opts_.metrics_endpoint.empty()) {
    http_listener_ =
        std::make_unique<Listener>(Endpoint::parse(opts_.metrics_endpoint));
  }
}

CollectorService::~CollectorService() = default;

const Endpoint& CollectorService::endpoint() const {
  return listener_->endpoint();
}

const Endpoint* CollectorService::metrics_endpoint() const {
  return http_listener_ ? &http_listener_->endpoint() : nullptr;
}

CollectorStats CollectorService::stats() const {
  std::lock_guard lk(stats_mu_);
  return stats_;
}

std::size_t CollectorService::open_connections() const {
  return open_conns_.load(std::memory_order_relaxed);
}

void CollectorService::run() {
  Poller poller;
  poller.watch(listener_->fd(), Poller::kReadable);
  if (http_listener_) poller.watch(http_listener_->fd(), Poller::kReadable);
  while (!stop_.load(std::memory_order_relaxed)) {
    for (const Poller::Event& ev : poller.wait(opts_.poll_timeout_ms)) {
      if (ev.fd == listener_->fd()) {
        if (ev.readable) {
          const std::size_t before = conns_.size();
          accept_pending();
          for (std::size_t i = before; i < conns_.size(); ++i)
            poller.watch(conns_[i]->sock.fd(), Poller::kReadable);
        }
        continue;
      }
      if (http_listener_ && ev.fd == http_listener_->fd()) {
        if (ev.readable) accept_http(poller);
        continue;
      }
      bool handled = false;
      for (std::size_t i = 0; i < http_conns_.size(); ++i) {
        if (http_conns_[i]->sock.fd() != ev.fd) continue;
        if (!service_http(poller, *http_conns_[i], ev)) {
          poller.forget(ev.fd);
          http_conns_.erase(http_conns_.begin() +
                            static_cast<std::ptrdiff_t>(i));
        }
        handled = true;
        break;
      }
      if (handled) continue;
      for (std::size_t i = 0; i < conns_.size(); ++i) {
        if (conns_[i]->sock.fd() != ev.fd) continue;
        // Read before honoring hangup: POLLHUP with queued bytes still
        // has frames to ingest; service_connection reads through EOF.
        if (!service_connection(*conns_[i])) {
          poller.forget(ev.fd);
          close_connection(i);
        }
        break;
      }
    }
  }

  // Graceful drain: no new connections, and the metrics endpoint goes
  // down first — scrapes must never extend a drain, and a half-written
  // response to a dying scraper is acceptable where a half-read producer
  // stream is not.
  http_conns_.clear();
  http_listener_.reset();
  listener_.reset();
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(opts_.drain_timeout_ms);
  while (!conns_.empty() && std::chrono::steady_clock::now() < deadline) {
    Poller drain_poller;
    for (const auto& conn : conns_)
      drain_poller.watch(conn->sock.fd(), Poller::kReadable);
    for (const Poller::Event& ev : drain_poller.wait(opts_.poll_timeout_ms)) {
      for (std::size_t i = 0; i < conns_.size(); ++i) {
        if (conns_[i]->sock.fd() != ev.fd) continue;
        if (!service_connection(*conns_[i])) close_connection(i);
        break;
      }
    }
  }
  // Deadline passed with producers still streaming: cut them off. Their
  // RemoteSinks observe the close and account the loss on their side.
  while (!conns_.empty()) {
    conns_.back()->errored = true;
    close_connection(conns_.size() - 1);
  }
}

void CollectorService::accept_pending() {
  for (;;) {
    Socket conn = listener_->accept();
    if (!conn.valid()) return;
    conns_.push_back(std::make_unique<Connection>(std::move(conn)));
    conns_.back()->id = next_conn_id_++;
    open_conns_.store(conns_.size(), std::memory_order_relaxed);
    std::lock_guard lk(stats_mu_);
    ++stats_.connections_accepted;
  }
}

bool CollectorService::service_connection(Connection& conn) {
  char chunk[64 * 1024];
  const std::size_t chunk_cap =
      opts_.read_chunk < sizeof chunk ? opts_.read_chunk : sizeof chunk;
  for (;;) {
    std::size_t n = 0;
    const IoResult r = conn.sock.read_some(chunk, chunk_cap, n);
    if (r == IoResult::kOk) {
      conn.rx.append(std::string_view(chunk, n));
      conn.bytes += n;
      {
        std::lock_guard lk(stats_mu_);
        stats_.bytes_received += n;
      }
      try {
        parse_frames(conn);
      } catch (const WireError&) {
        // Hostile or corrupt stream: drop this client, keep the daemon.
        // Spans decoded before the bad frame were already published.
        conn.errored = true;
        return false;
      }
      continue;
    }
    if (r == IoResult::kWouldBlock) return true;
    // EOF or reset: the stream is over. EOF at a frame boundary (or
    // after the footer) is a clean close; bytes stranded mid-frame mean
    // the producer died or was cut mid-send — a truncated stream,
    // counted as errored, though everything already decoded was kept.
    if (r != IoResult::kClosed || conn.rx.size() != 0) conn.errored = true;
    return false;
  }
}

void CollectorService::parse_frames(Connection& conn) {
  for (;;) {
    const std::string_view data = conn.rx.data();
    if (!conn.got_header) {
      if (data.size() < sizeof(wire::Header)) return;
      wire::Header header{};
      std::memcpy(&header, data.data(), sizeof header);
      conn.version = trace::WireDecoder::validate_header(header);
      // A v1–v3 producer may stream the legacy (pre-inline-tag) span
      // record; the decoder widens each one during batch decode.
      conn.decoder.set_span_size(header.span_size);
      conn.rx.consume(sizeof header);
      conn.got_header = true;
      continue;
    }
    if (data.size() < sizeof(wire::FrameHeader)) return;
    if (conn.done) {
      // Frames after the footer: corruption or a confused client. EOF is
      // the only valid continuation.
      throw WireError("xsp collector: data after footer frame");
    }
    wire::FrameHeader fh{};
    std::memcpy(&fh, data.data(), sizeof fh);
    const auto payload_size = static_cast<std::size_t>(fh.payload_size);
    if (payload_size > opts_.max_frame_payload ||
        payload_size > wire::kMaxFramePayload) {
      throw WireError("xsp collector: frame payload length " +
                      std::to_string(payload_size) + " exceeds the bound");
    }
    if (data.size() - sizeof fh < payload_size) return;  // reassembling
    const std::string_view payload = data.substr(sizeof fh, payload_size);

    switch (static_cast<wire::FrameType>(fh.type)) {
      case wire::FrameType::kStringDelta: {
        const std::uint64_t before = conn.decoder.strings_reinterned();
        conn.decoder.decode_string_delta(payload);
        std::lock_guard lk(stats_mu_);
        stats_.strings_reinterned += conn.decoder.strings_reinterned() - before;
        break;
      }
      case wire::FrameType::kSpanBatch: {
        conn.decoder.decode_span_batch(payload, conn.scratch);
        ingest_batch(conn);
        break;
      }
      case wire::FrameType::kHeartbeat: {
        // checked_heartbeat enforces the v3 gate: a heartbeat inside a
        // stream that declared v1/v2 is a protocol violation, same as any
        // malformed frame.
        conn.hb = wire::checked_heartbeat(payload, conn.version);
        conn.got_heartbeat = true;
        conn.last_hb = Clock::now();
        std::lock_guard lk(stats_mu_);
        ++stats_.heartbeats_seen;
        break;
      }
      case wire::FrameType::kFooter: {
        // Older producers send shorter footer prefixes (11 fields for
        // v1, 13 for v2/v3); the later-version fields decode as zero
        // (see BinaryReader's matching rule).
        if (payload_size != wire::footer_size(conn.version))
          throw WireError("xsp collector: footer payload length mismatch");
        wire::Footer footer{};
        std::memcpy(&footer, payload.data(), payload_size);
        conn.decoder.set_footer(footer);
        conn.done = true;
        std::lock_guard lk(stats_mu_);
        ++stats_.footers_seen;
        stats_.producer_dropped_spans += footer.remote_dropped_spans;
        stats_.producer_reconnects += footer.remote_reconnects;
        break;
      }
      default:
        throw WireError("xsp collector: unknown frame type " +
                        std::to_string(fh.type));
    }
    conn.rx.consume(sizeof fh + payload_size);
    ++conn.frames;
    std::lock_guard lk(stats_mu_);
    ++stats_.frames_parsed;
  }
}

void CollectorService::ingest_batch(Connection& conn) {
  // Strings were re-interned by the decoder; now lift the producer's
  // sink-local span/correlation ids into the server's fleet-wide space.
  const auto map_span_id = [&conn, this](SpanId producer_id) -> SpanId {
    if (producer_id == trace::kNoSpan) return trace::kNoSpan;
    const auto [it, inserted] = conn.span_remap.emplace(producer_id, 0);
    if (inserted) it->second = sink_.next_span_id();
    return it->second;
  };
  for (Span& span : conn.scratch) {
    span.id = map_span_id(span.id);
    span.parent = map_span_id(span.parent);
    if (span.correlation_id != 0) {
      const auto [it, inserted] = conn.corr_remap.emplace(span.correlation_id, 0);
      if (inserted) it->second = sink_.next_correlation_id();
      span.correlation_id = it->second;
    }
    sink_.publish(span);
  }
  conn.spans += conn.scratch.size();
  std::lock_guard lk(stats_mu_);
  stats_.spans_ingested += conn.scratch.size();
}

void CollectorService::close_connection(std::size_t index) {
  {
    std::lock_guard lk(stats_mu_);
    if (conns_[index]->errored) {
      ++stats_.connections_errored;
    } else {
      ++stats_.connections_closed;
    }
  }
  // Destroying the socket closes our end — the drain-protocol ack a
  // cleanly-finished producer is waiting for.
  conns_.erase(conns_.begin() + static_cast<std::ptrdiff_t>(index));
  open_conns_.store(conns_.size(), std::memory_order_relaxed);
}

// --- HTTP metrics endpoint ---------------------------------------------

void CollectorService::accept_http(Poller& poller) {
  for (;;) {
    Socket sock = http_listener_->accept();
    if (!sock.valid()) return;
    http_conns_.push_back(std::make_unique<HttpConn>(std::move(sock)));
    poller.watch(http_conns_.back()->sock.fd(), Poller::kReadable);
  }
}

bool CollectorService::service_http(Poller& poller, HttpConn& hc,
                                    const Poller::Event& ev) {
  if (ev.readable && !hc.responding) {
    char chunk[4096];
    for (;;) {
      std::size_t n = 0;
      const IoResult r = hc.sock.read_some(chunk, sizeof chunk, n);
      if (r == IoResult::kWouldBlock) break;
      if (r != IoResult::kOk) return false;  // EOF/reset before a request
      const auto st = hc.parser.feed(std::string_view(chunk, n));
      if (st == HttpRequestParser::Status::kNeedMore) continue;
      // Terminal either way: build the response and flip to writing.
      if (st == HttpRequestParser::Status::kError) {
        hc.tx = http_response(400, "text/plain; charset=utf-8",
                              std::string(hc.parser.error()) + "\n");
        std::lock_guard lk(stats_mu_);
        ++stats_.http_requests;
        ++stats_.http_errors;
      } else {
        hc.tx = respond(hc.parser.request());
      }
      hc.responding = true;
      poller.watch(hc.sock.fd(), Poller::kWritable);
      break;
    }
  }
  if (hc.responding) {
    while (hc.tx_off < hc.tx.size()) {
      std::size_t n = 0;
      const IoResult r = hc.sock.write_some(hc.tx.data() + hc.tx_off,
                                            hc.tx.size() - hc.tx_off, n);
      if (r == IoResult::kOk) {
        hc.tx_off += n;
        continue;
      }
      if (r == IoResult::kWouldBlock) return true;
      return false;  // peer went away mid-response
    }
    return false;  // response complete: close (Connection: close)
  }
  return !ev.hangup;
}

std::string CollectorService::respond(const HttpRequest& req) {
  const auto count = [this](bool error) {
    std::lock_guard lk(stats_mu_);
    ++stats_.http_requests;
    if (error) ++stats_.http_errors;
  };
  if (req.method != "GET") {
    count(true);
    return http_response(405, "text/plain; charset=utf-8",
                         "method not allowed\n");
  }
  // Strip any query string: Prometheus scrapers may append one.
  std::string_view path = req.path;
  if (const auto q = path.find('?'); q != std::string_view::npos)
    path = path.substr(0, q);
  if (path == "/healthz") {
    count(false);
    return http_response(200, "text/plain; charset=utf-8", "ok\n");
  }
  if (path == "/metrics") {
    count(false);
    scrape_buf_.clear();
    build_metrics_text(scrape_buf_);
    return http_response(200, "text/plain; version=0.0.4; charset=utf-8",
                         scrape_buf_);
  }
  count(true);
  return http_response(404, "text/plain; charset=utf-8", "not found\n");
}

void CollectorService::build_metrics_text(std::string& out) {
  using metrics::Kind;
  using metrics::append_family_header;
  using metrics::append_sample_line;

  const CollectorStats s = stats();

  const auto family = [&out](std::string_view name, std::string_view help,
                             Kind kind, std::uint64_t value) {
    append_family_header(out, name, help, kind);
    append_sample_line(out, name, {}, value);
  };

  // The fleet-accounting headline: what actually reached the sink. CI's
  // multi-process smoke checks this against the producers' own
  // sent-minus-dropped totals.
  family("xsp_ingested_spans_total",
         "Spans ingested into the collector's sink across all connections",
         Kind::kCounter, s.spans_ingested);
  family("xsp_collector_connections_accepted_total",
         "Producer connections accepted", Kind::kCounter,
         s.connections_accepted);
  family("xsp_collector_connections_closed_total",
         "Producer connections closed cleanly", Kind::kCounter,
         s.connections_closed);
  family("xsp_collector_connections_errored_total",
         "Producer connections dropped for protocol violations or truncation",
         Kind::kCounter, s.connections_errored);
  family("xsp_collector_bytes_received_total",
         "Wire bytes received from producers", Kind::kCounter,
         s.bytes_received);
  family("xsp_collector_frames_total", "Wire frames parsed (all types)",
         Kind::kCounter, s.frames_parsed);
  family("xsp_collector_strings_reinterned_total",
         "Producer string-table entries re-interned", Kind::kCounter,
         s.strings_reinterned);
  family("xsp_collector_footers_total", "Stream footer frames ingested",
         Kind::kCounter, s.footers_seen);
  family("xsp_collector_heartbeats_total",
         "Producer heartbeat frames ingested", Kind::kCounter,
         s.heartbeats_seen);
  family("xsp_collector_producer_dropped_spans_total",
         "Spans producers reported dropping before send (from footers)",
         Kind::kCounter, s.producer_dropped_spans);
  family("xsp_collector_producer_reconnects_total",
         "Reconnects producers reported (from footers)", Kind::kCounter,
         s.producer_reconnects);
  family("xsp_collector_http_requests_total",
         "HTTP requests answered on this endpoint", Kind::kCounter,
         s.http_requests);
  family("xsp_collector_http_errors_total",
         "HTTP requests answered with a non-200 status", Kind::kCounter,
         s.http_errors);
  append_family_header(out, "xsp_collector_open_connections",
                       "Producer connections currently open", Kind::kGauge);
  append_sample_line(out, "xsp_collector_open_connections", {},
                     static_cast<std::uint64_t>(conns_.size()));

  // Bounded-interning health of the collector's own global table — the
  // table every producer stream re-interns into. CI's multi-process smoke
  // asserts xsp_strtab_bytes stays under the configured budget while
  // producers publish high-cardinality inline tags.
  {
    const auto& table = common::StringTable::global();
    append_family_header(out, "xsp_strtab_bytes",
                         "Approximate resident bytes in the global string table",
                         Kind::kGauge);
    append_sample_line(out, "xsp_strtab_bytes", {},
                       static_cast<std::uint64_t>(table.approx_bytes()));
    family("xsp_strtab_rejected_total",
           "Interns rejected by the string-table byte budget or slot ceiling",
           Kind::kCounter, table.rejected_interns());
  }

  // Per-connection ingest series, one sample per open connection. The
  // label is the monotonic accept id: closed connections disappear from
  // the scrape (their totals live on in the aggregates above).
  struct PerConn {
    std::string_view name;
    std::string_view help;
    std::uint64_t Connection::*field;
  };
  static constexpr PerConn kPerConn[] = {
      {"xsp_connection_bytes_total", "Wire bytes received on this connection",
       &Connection::bytes},
      {"xsp_connection_frames_total", "Wire frames parsed on this connection",
       &Connection::frames},
      {"xsp_connection_spans_total", "Spans ingested from this connection",
       &Connection::spans},
  };
  for (const PerConn& pc : kPerConn) {
    if (conns_.empty()) break;
    append_family_header(out, pc.name, pc.help, Kind::kCounter);
    for (const auto& conn : conns_)
      append_sample_line(out, pc.name, conn_label(conn->id), (*conn).*pc.field);
  }

  // Producer-health series from wire v3 heartbeats: the producer's *own*
  // accounting (published/dropped/outbox) surfaced while the stream is
  // live, plus how long ago the last beacon arrived. Only connections
  // that have heartbeated expose these — a v1/v2 producer is silent, not
  // flatlined at zero.
  struct PerHb {
    std::string_view name;
    std::string_view help;
    Kind kind;
    std::uint64_t wire::Heartbeat::*field;
  };
  static constexpr PerHb kPerHb[] = {
      {"xsp_producer_published_spans_total",
       "Spans the producer published into its RemoteSink", Kind::kCounter,
       &wire::Heartbeat::spans_published},
      {"xsp_producer_sent_spans_total",
       "Spans the producer put on the wire", Kind::kCounter,
       &wire::Heartbeat::spans_sent},
      {"xsp_producer_dropped_spans_total",
       "Spans the producer dropped under backpressure", Kind::kCounter,
       &wire::Heartbeat::spans_dropped},
      {"xsp_producer_shed_spans_total",
       "Spans the producer shed selectively via its sampler", Kind::kCounter,
       &wire::Heartbeat::spans_shed},
      {"xsp_producer_sampled_kept_total",
       "Spans the producer's admission sampler kept", Kind::kCounter,
       &wire::Heartbeat::sampled_kept},
      {"xsp_producer_sampled_dropped_total",
       "Spans the producer's admission sampler rejected", Kind::kCounter,
       &wire::Heartbeat::sampled_dropped},
      {"xsp_producer_reconnects_total",
       "Reconnects the producer's sink performed", Kind::kCounter,
       &wire::Heartbeat::reconnects},
      {"xsp_producer_outbox_spans",
       "Spans queued in the producer's outbox at last heartbeat",
       Kind::kGauge, &wire::Heartbeat::outbox_spans},
      {"xsp_producer_heartbeat_sequence",
       "Sequence number of the producer's last heartbeat", Kind::kGauge,
       &wire::Heartbeat::sequence},
  };
  const bool any_hb = [this] {
    for (const auto& conn : conns_)
      if (conn->got_heartbeat) return true;
    return false;
  }();
  if (any_hb) {
    for (const PerHb& ph : kPerHb) {
      append_family_header(out, ph.name, ph.help, ph.kind);
      for (const auto& conn : conns_) {
        if (!conn->got_heartbeat) continue;
        append_sample_line(out, ph.name, conn_label(conn->id),
                           conn->hb.*ph.field);
      }
    }
    const auto now = Clock::now();
    append_family_header(out, "xsp_producer_heartbeat_age_seconds",
                         "Seconds since this producer's last heartbeat",
                         Kind::kGauge);
    for (const auto& conn : conns_) {
      if (!conn->got_heartbeat) continue;
      const double age =
          std::chrono::duration<double>(now - conn->last_hb).count();
      append_sample_line(out, "xsp_producer_heartbeat_age_seconds",
                         conn_label(conn->id), age);
    }
    append_family_header(
        out, "xsp_producer_stale",
        "1 when the producer's heartbeats stopped past the staleness bound",
        Kind::kGauge);
    for (const auto& conn : conns_) {
      if (!conn->got_heartbeat) continue;
      const bool stale =
          opts_.heartbeat_stale_ms > 0 &&
          now - conn->last_hb >
              std::chrono::milliseconds(opts_.heartbeat_stale_ms);
      append_sample_line(out, "xsp_producer_stale", conn_label(conn->id),
                         static_cast<std::uint64_t>(stale ? 1 : 0));
    }
  }

  // Whatever the embedding daemon registered (the sink's xsp_trace_*
  // series, tool-level counters) renders after the service's own.
  if (opts_.registry != nullptr) opts_.registry->write_prometheus(out);
}

}  // namespace xsp::net
