#include "xsp/net/collector.hpp"

#include <chrono>
#include <cstring>
#include <string_view>
#include <utility>

namespace xsp::net {

namespace {

using trace::Span;
using trace::SpanId;
using trace::WireError;
namespace wire = trace::wire;

}  // namespace

/// Per-connection ingest state. Everything here is touched only by the
/// run() thread.
struct CollectorService::Connection {
  Socket sock;
  RxBuffer rx;
  trace::WireDecoder decoder;
  /// Producer-local span id -> server-wide id, allocated lazily so a
  /// child's forward reference to a not-yet-published parent mints the
  /// parent's server id early and the later parent span reuses it.
  std::unordered_map<SpanId, SpanId> span_remap;
  std::unordered_map<std::uint64_t, std::uint64_t> corr_remap;
  trace::SpanBatch scratch;
  /// Stream format version from the validated header; sizes the footer
  /// frame (wire::footer_size) so v1 producers keep working against a v2
  /// daemon.
  std::uint16_t version = wire::kVersion;
  bool got_header = false;
  bool done = false;     ///< footer seen; only EOF is acceptable after
  bool errored = false;  ///< hostile input or mid-frame disconnect

  explicit Connection(Socket s) : sock(std::move(s)) {}
};

CollectorService::CollectorService(const Endpoint& endpoint,
                                   trace::SpanSink& sink,
                                   CollectorOptions options)
    : sink_(sink),
      opts_(options),
      listener_(std::make_unique<Listener>(endpoint)) {}

CollectorService::~CollectorService() = default;

const Endpoint& CollectorService::endpoint() const {
  return listener_->endpoint();
}

CollectorStats CollectorService::stats() const {
  std::lock_guard lk(stats_mu_);
  return stats_;
}

std::size_t CollectorService::open_connections() const {
  return open_conns_.load(std::memory_order_relaxed);
}

void CollectorService::run() {
  Poller poller;
  poller.watch(listener_->fd(), Poller::kReadable);
  while (!stop_.load(std::memory_order_relaxed)) {
    for (const Poller::Event& ev : poller.wait(opts_.poll_timeout_ms)) {
      if (ev.fd == listener_->fd()) {
        if (ev.readable) {
          const std::size_t before = conns_.size();
          accept_pending();
          for (std::size_t i = before; i < conns_.size(); ++i)
            poller.watch(conns_[i]->sock.fd(), Poller::kReadable);
        }
        continue;
      }
      for (std::size_t i = 0; i < conns_.size(); ++i) {
        if (conns_[i]->sock.fd() != ev.fd) continue;
        // Read before honoring hangup: POLLHUP with queued bytes still
        // has frames to ingest; service_connection reads through EOF.
        if (!service_connection(*conns_[i])) {
          poller.forget(ev.fd);
          close_connection(i);
        }
        break;
      }
    }
  }

  // Graceful drain: no new connections; finish reading the open ones.
  listener_.reset();
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(opts_.drain_timeout_ms);
  while (!conns_.empty() && std::chrono::steady_clock::now() < deadline) {
    Poller drain_poller;
    for (const auto& conn : conns_)
      drain_poller.watch(conn->sock.fd(), Poller::kReadable);
    for (const Poller::Event& ev : drain_poller.wait(opts_.poll_timeout_ms)) {
      for (std::size_t i = 0; i < conns_.size(); ++i) {
        if (conns_[i]->sock.fd() != ev.fd) continue;
        if (!service_connection(*conns_[i])) close_connection(i);
        break;
      }
    }
  }
  // Deadline passed with producers still streaming: cut them off. Their
  // RemoteSinks observe the close and account the loss on their side.
  while (!conns_.empty()) {
    conns_.back()->errored = true;
    close_connection(conns_.size() - 1);
  }
}

void CollectorService::accept_pending() {
  for (;;) {
    Socket conn = listener_->accept();
    if (!conn.valid()) return;
    conns_.push_back(std::make_unique<Connection>(std::move(conn)));
    open_conns_.store(conns_.size(), std::memory_order_relaxed);
    std::lock_guard lk(stats_mu_);
    ++stats_.connections_accepted;
  }
}

bool CollectorService::service_connection(Connection& conn) {
  char chunk[64 * 1024];
  const std::size_t chunk_cap =
      opts_.read_chunk < sizeof chunk ? opts_.read_chunk : sizeof chunk;
  for (;;) {
    std::size_t n = 0;
    const IoResult r = conn.sock.read_some(chunk, chunk_cap, n);
    if (r == IoResult::kOk) {
      conn.rx.append(std::string_view(chunk, n));
      {
        std::lock_guard lk(stats_mu_);
        stats_.bytes_received += n;
      }
      try {
        parse_frames(conn);
      } catch (const WireError&) {
        // Hostile or corrupt stream: drop this client, keep the daemon.
        // Spans decoded before the bad frame were already published.
        conn.errored = true;
        return false;
      }
      continue;
    }
    if (r == IoResult::kWouldBlock) return true;
    // EOF or reset: the stream is over. EOF at a frame boundary (or
    // after the footer) is a clean close; bytes stranded mid-frame mean
    // the producer died or was cut mid-send — a truncated stream,
    // counted as errored, though everything already decoded was kept.
    if (r != IoResult::kClosed || conn.rx.size() != 0) conn.errored = true;
    return false;
  }
}

void CollectorService::parse_frames(Connection& conn) {
  for (;;) {
    const std::string_view data = conn.rx.data();
    if (!conn.got_header) {
      if (data.size() < sizeof(wire::Header)) return;
      wire::Header header{};
      std::memcpy(&header, data.data(), sizeof header);
      conn.version = trace::WireDecoder::validate_header(header);
      conn.rx.consume(sizeof header);
      conn.got_header = true;
      continue;
    }
    if (data.size() < sizeof(wire::FrameHeader)) return;
    if (conn.done) {
      // Frames after the footer: corruption or a confused client. EOF is
      // the only valid continuation.
      throw WireError("xsp collector: data after footer frame");
    }
    wire::FrameHeader fh{};
    std::memcpy(&fh, data.data(), sizeof fh);
    const auto payload_size = static_cast<std::size_t>(fh.payload_size);
    if (payload_size > opts_.max_frame_payload ||
        payload_size > wire::kMaxFramePayload) {
      throw WireError("xsp collector: frame payload length " +
                      std::to_string(payload_size) + " exceeds the bound");
    }
    if (data.size() - sizeof fh < payload_size) return;  // reassembling
    const std::string_view payload = data.substr(sizeof fh, payload_size);

    switch (static_cast<wire::FrameType>(fh.type)) {
      case wire::FrameType::kStringDelta: {
        const std::uint64_t before = conn.decoder.strings_reinterned();
        conn.decoder.decode_string_delta(payload);
        std::lock_guard lk(stats_mu_);
        stats_.strings_reinterned += conn.decoder.strings_reinterned() - before;
        break;
      }
      case wire::FrameType::kSpanBatch: {
        conn.decoder.decode_span_batch(payload, conn.scratch);
        ingest_batch(conn);
        break;
      }
      case wire::FrameType::kFooter: {
        // v1 producers send the 11-field footer prefix; the v2-only
        // fields decode as zero (see BinaryReader's matching rule).
        if (payload_size != wire::footer_size(conn.version))
          throw WireError("xsp collector: footer payload length mismatch");
        wire::Footer footer{};
        std::memcpy(&footer, payload.data(), payload_size);
        conn.decoder.set_footer(footer);
        conn.done = true;
        std::lock_guard lk(stats_mu_);
        ++stats_.footers_seen;
        stats_.producer_dropped_spans += footer.remote_dropped_spans;
        stats_.producer_reconnects += footer.remote_reconnects;
        break;
      }
      default:
        throw WireError("xsp collector: unknown frame type " +
                        std::to_string(fh.type));
    }
    conn.rx.consume(sizeof fh + payload_size);
  }
}

void CollectorService::ingest_batch(Connection& conn) {
  // Strings were re-interned by the decoder; now lift the producer's
  // sink-local span/correlation ids into the server's fleet-wide space.
  const auto map_span_id = [&conn, this](SpanId producer_id) -> SpanId {
    if (producer_id == trace::kNoSpan) return trace::kNoSpan;
    const auto [it, inserted] = conn.span_remap.emplace(producer_id, 0);
    if (inserted) it->second = sink_.next_span_id();
    return it->second;
  };
  for (Span& span : conn.scratch) {
    span.id = map_span_id(span.id);
    span.parent = map_span_id(span.parent);
    if (span.correlation_id != 0) {
      const auto [it, inserted] = conn.corr_remap.emplace(span.correlation_id, 0);
      if (inserted) it->second = sink_.next_correlation_id();
      span.correlation_id = it->second;
    }
    sink_.publish(span);
  }
  std::lock_guard lk(stats_mu_);
  stats_.spans_ingested += conn.scratch.size();
}

void CollectorService::close_connection(std::size_t index) {
  {
    std::lock_guard lk(stats_mu_);
    if (conns_[index]->errored) {
      ++stats_.connections_errored;
    } else {
      ++stats_.connections_closed;
    }
  }
  // Destroying the socket closes our end — the drain-protocol ack a
  // cleanly-finished producer is waiting for.
  conns_.erase(conns_.begin() + static_cast<std::ptrdiff_t>(index));
  open_conns_.store(conns_.size(), std::memory_order_relaxed);
}

}  // namespace xsp::net
