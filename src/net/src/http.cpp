#include "xsp/net/http.hpp"

namespace xsp::net {

namespace {

bool token_char(char c) {
  // RFC 7230 tcharish: enough to accept real methods and reject binary noise.
  return (c >= 'A' && c <= 'Z') || (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') ||
         c == '-' || c == '_';
}

}  // namespace

HttpRequestParser::Status HttpRequestParser::feed(std::string_view bytes) {
  if (status_ != Status::kNeedMore) return status_;
  // Cap before buffering: a head that cannot terminate within the budget is
  // hostile regardless of what eventually arrives.
  if (buf_.size() + bytes.size() > kMaxHttpRequestBytes) {
    // Keep whatever fits so the request-line check below still sees it.
    bytes = bytes.substr(0, kMaxHttpRequestBytes - buf_.size());
    buf_.append(bytes);
    return fail("request head exceeds limit");
  }
  buf_.append(bytes);

  const std::size_t head_end = buf_.find("\r\n\r\n");
  if (head_end == std::string::npos) {
    // No terminator yet. If the request *line* alone is already oversized
    // (no CR within the budget), call it now rather than buffering on.
    if (buf_.size() >= kMaxHttpRequestBytes) return fail("request head exceeds limit");
    return status_;
  }

  const std::size_t line_end = buf_.find("\r\n");
  std::string_view line(buf_.data(), line_end);

  const std::size_t sp1 = line.find(' ');
  if (sp1 == std::string_view::npos || sp1 == 0) return fail("malformed request line");
  const std::size_t sp2 = line.find(' ', sp1 + 1);
  if (sp2 == std::string_view::npos || sp2 == sp1 + 1) return fail("malformed request line");

  std::string_view method = line.substr(0, sp1);
  std::string_view path = line.substr(sp1 + 1, sp2 - sp1 - 1);
  std::string_view version = line.substr(sp2 + 1);

  for (char c : method) {
    if (!token_char(c)) return fail("malformed method token");
  }
  if (path.empty() || path[0] != '/') return fail("malformed request path");
  if (version.substr(0, 5) != "HTTP/") return fail("unsupported protocol");

  req_.method.assign(method);
  req_.path.assign(path);
  status_ = Status::kComplete;
  return status_;
}

std::string_view http_status_reason(int status_code) {
  switch (status_code) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    default: return "Error";
  }
}

std::string http_response(int status_code, std::string_view content_type,
                          std::string_view body) {
  std::string out;
  out.reserve(body.size() + 128);
  out.append("HTTP/1.0 ");
  out.append(std::to_string(status_code));
  out.push_back(' ');
  out.append(http_status_reason(status_code));
  out.append("\r\nContent-Type: ");
  out.append(content_type);
  out.append("\r\nContent-Length: ");
  out.append(std::to_string(body.size()));
  out.append("\r\nConnection: close\r\n\r\n");
  out.append(body);
  return out;
}

}  // namespace xsp::net
