#include "xsp/profile/session.hpp"

#include <cstdio>
#include <fstream>
#include <stdexcept>
#include <utility>

#include "xsp/net/endpoint.hpp"
#include "xsp/profile/span_keys.hpp"
#include "xsp/trace/sampler.hpp"
#include "xsp/trace/wire.hpp"

namespace xsp::profile {

namespace {

const SpanKeys& keys() { return span_keys(); }

// Keep the span's fidelity signal honest: a capacity-rejected annotation
// must increment dropped_annotations here exactly as Tracer::add_tag does.
void set_tag(trace::Span& s, trace::StrId key, trace::StrId value) {
  if (!s.tags.set(key, value)) s.note_dropped();
}

/// Inline variant for dynamically composed, high-cardinality values
/// (grid/block dims): the bytes ride in the span, never the StringTable.
void set_inline_tag(trace::Span& s, trace::StrId key, std::string_view value) {
  if (!s.inline_tags.set(key, value)) s.note_dropped();
}

void set_metric(trace::Span& s, trace::StrId key, double value) {
  if (!s.metrics.set(key, value)) s.note_dropped();
}

}  // namespace

std::string ProfileOptions::level_string() const {
  std::string s = model_level ? "M" : "";
  if (layer_level) s += s.empty() ? "L" : "/L";
  if (library_level) s += s.empty() ? "Lib" : "/Lib";
  if (gpu_level) s += s.empty() ? "G" : "/G";
  return s;
}

Session::Session(const sim::GpuSpec& system, framework::FrameworkKind framework)
    : device_(system, clock_), executor_(framework, device_) {}

analysis::OnlineSnapshot Session::live_snapshot() const {
  std::shared_ptr<analysis::OnlineAnalyzer> online;
  {
    std::lock_guard lk(online_mu_);
    online = online_;
  }
  return online != nullptr ? online->snapshot() : analysis::OnlineSnapshot{};
}

std::shared_ptr<analysis::OnlineAnalyzer> Session::live_analyzer() const {
  std::lock_guard lk(online_mu_);
  return online_;
}

void Session::reset_live_stats() {
  std::shared_ptr<analysis::OnlineAnalyzer> online;
  {
    std::lock_guard lk(online_mu_);
    online = online_;
  }
  if (online != nullptr) online->reset();
}

SlotTelemetry Session::slot_telemetry() const {
  // Hold server_mu_ across the reads so profile() cannot replace (and
  // destroy) the fleet mid-query; the per-shard counters themselves are
  // internally synchronized.
  std::lock_guard lk(server_mu_);
  if (server_ == nullptr) return {};
  SlotTelemetry t;
  t.live_slots = server_->live_slot_count();
  t.retired_slots = server_->retired_slot_count();
  t.pooled_slots = server_->pooled_slot_count();
  t.slot_bytes = server_->approx_slot_bytes();
  return t;
}

void Session::bind_metrics(metrics::Registry* registry, metrics::Labels labels) {
  metrics_registry_ = registry;
  metrics_labels_ = std::move(labels);
  strtab_series_.clear();
  if (metrics_registry_ == nullptr) return;
  // Bind whatever exists now; profile() re-applies the binding whenever
  // it swaps the fleet or the sink (the dying component released its
  // series first, so names never collide).
  std::lock_guard lk(server_mu_);
  if (server_ != nullptr) server_->bind_metrics(*metrics_registry_, metrics_labels_);
  if (remote_ != nullptr) remote_->bind_metrics(*metrics_registry_, metrics_labels_);
  // Bounded-interning health: the process-global table's footprint and its
  // lifetime rejection count. Samples are two relaxed atomic loads (plus
  // sharded shared locks for approx_bytes), scrape-time only.
  strtab_series_.push_back(metrics_registry_->callback(
      "xsp_strtab_bytes", "Approximate resident bytes in the global string table",
      metrics::Kind::kGauge, metrics_labels_,
      [] { return static_cast<double>(common::StringTable::global().approx_bytes()); }));
  strtab_series_.push_back(metrics_registry_->callback(
      "xsp_strtab_rejected_total",
      "Interns rejected by the string-table byte budget or slot ceiling",
      metrics::Kind::kCounter, metrics_labels_,
      [] { return static_cast<double>(common::StringTable::global().rejected_interns()); }));
}

trace::SpanId Session::start_span(trace::StrId name, trace::SpanId parent) {
  if (!model_tracer_) return trace::kNoSpan;
  return model_tracer_->start_span(name, clock_.now(), parent);
}

void Session::finish_span(trace::SpanId id) {
  if (model_tracer_) model_tracer_->finish_span(id, clock_.now());
}

RunTrace Session::profile(const framework::Graph& graph, const ProfileOptions& options) {
  // Bounded interning: arm the budget before anything in this run interns.
  // 0 leaves the table's current setting alone (the budget is process
  // state, not per-run state — see ProfileOptions::strtab_budget_bytes).
  if (options.strtab_budget_bytes != 0) {
    common::StringTable::global().set_budget_bytes(options.strtab_budget_bytes);
  }
  // One (possibly sharded) collection fleet, one fresh tracer per
  // profiler per run. trace_shards == 1 is the plain single-server shape;
  // 0 lets the fleet size itself to the hardware. The fleet is reused
  // across runs when its configuration matches — take_batches() left it
  // empty, and reuse is what lets the recycled batch buffers below feed
  // the next run's publication.
  if (server_ == nullptr ||
      server_->shard_count() != trace::ShardedTraceServer::resolve_shard_count(options.trace_shards) ||
      server_->mode() != options.publish_mode || server_->policy() != options.shard_policy) {
    auto fresh = std::make_unique<trace::ShardedTraceServer>(
        options.trace_shards, options.publish_mode, options.shard_policy);
    // Only the pointer swap is guarded: slot_telemetry() on a dashboard
    // thread must never catch the fleet mid-replacement.
    {
      std::lock_guard lk(server_mu_);
      server_ = std::move(fresh);
    }
    // Rebind after the swap: the old fleet's destructor released its
    // series, so the new fleet can register the same names.
    if (metrics_registry_ != nullptr) server_->bind_metrics(*metrics_registry_, metrics_labels_);
  } else {
    // A prior run that threw mid-publication may have left spans queued;
    // a reused fleet must start the run empty (and with drop counters
    // zeroed), exactly like a fresh one. The discarded buffers refill the
    // freelists. Span ids continue across runs, like the session clock
    // does — per-run reproducibility is per fresh Session (see
    // DeterministicAcrossIdenticalRuns), not per profile() call.
    server_->recycle(server_->take_batches());
  }
  // Sampling admission: build (or drop) the policy before any tracer
  // publishes. One Sampler instance is shared by the fleet (admission),
  // the remote sink (pressure shedding), and the live analyzer
  // (rescaling) so all three agree on every span's fate.
  const bool want_sampler =
      options.sampling_rate < 1.0 || options.sampling_tail_keep_ns > 0;
  if (want_sampler) {
    if (sampler_ == nullptr || sampler_->options().rate != options.sampling_rate ||
        sampler_->options().tail_keep_ns != options.sampling_tail_keep_ns ||
        sampler_->options().seed != options.sampling_seed) {
      trace::SamplerOptions sopts;
      sopts.rate = options.sampling_rate;
      sopts.tail_keep_ns = options.sampling_tail_keep_ns;
      sopts.seed = options.sampling_seed;
      sampler_ = std::make_shared<const trace::Sampler>(sopts);
    }
  } else {
    sampler_ = nullptr;
  }
  server_->set_sampler(sampler_);
  // Per-run admission deltas come from before/after captures of the
  // fleet's lifetime-monotonic counters (a reused fleet keeps counting).
  const std::uint64_t sampled_kept_before = server_->sampled_kept_count();
  const std::uint64_t sampled_dropped_before = server_->sampled_dropped_count();
  // Streaming export: observe batches as the shards drain them, writing
  // raw publication spans to the file during the run. kObserve (tee)
  // because this run also assembles an in-memory timeline; a service that
  // only wants the file attaches its own subscriber with kConsume.
  std::ofstream stream_file;
  std::unique_ptr<trace::StreamingExporter> stream_exporter;
  std::unique_ptr<trace::BinaryWriter> binary_writer;
  struct SubscriberGuard {
    trace::ShardedTraceServer* server = nullptr;
    trace::SubscriberId stream_id = 0;
    trace::SubscriberId live_id = 0;
    trace::SubscriberId remote_id = 0;
    const std::string* partial_file = nullptr;
    ~SubscriberGuard() {
      // Detach before the exporter (captured below) dies — also on the
      // exception path, so a reused fleet never calls a dead exporter.
      if (server != nullptr && stream_id != 0) server->remove_drain_subscriber(stream_id);
      // The live analyzer outlives the run, but a detached-by-run-end
      // subscriber keeps a reused fleet from feeding a stale shard map.
      if (server != nullptr && live_id != 0) server->remove_drain_subscriber(live_id);
      // The remote sink outlives the run too (one wire stream per
      // session); only the per-run subscription detaches.
      if (server != nullptr && remote_id != 0) server->remove_drain_subscriber(remote_id);
      // A failed run must not leave a valid-looking export: the exporter's
      // destructor would still footer the partial document, so unlink the
      // file (the remaining writes go to the orphaned handle, harmlessly).
      if (partial_file != nullptr) std::remove(partial_file->c_str());
    }
  } subscriber_guard;
  subscriber_guard.server = server_.get();
  // Live online aggregation: the analyzer subscribes shard-aware (feeding
  // the hot-shard load counters) in observe mode, so it composes with the
  // streaming exporter below and with normal in-memory assembly — all of
  // them fan out on the same drain. The analyzer itself persists across
  // runs; only the subscription is per-run.
  std::shared_ptr<analysis::OnlineAnalyzer> online;
  if (options.live_stats) {
    {
      std::lock_guard lk(online_mu_);
      if (online_ == nullptr) {
        analysis::OnlineAnalyzerOptions oopts;
        oopts.shard_count = server_->shard_count();
        if (options.live_stats_window > 0) oopts.window = options.live_stats_window;
        oopts.max_kernel_rows = options.top_k_kernels;
        online_ = std::make_shared<analysis::OnlineAnalyzer>(oopts);
      }
      online = online_;
    }
    // The analyzer only ever sees admitted spans; handing it the same
    // policy lets it weight each one by 1/effective_rate so its
    // est_* fields estimate the unsampled stream.
    online->set_sampler(sampler_);
    // The analyzer is a service-lifetime accumulator: a resharded fleet
    // grows its per-shard counters and a new window reconfigures the
    // (transient) ring in place — neither discards accumulated
    // aggregates. reset_live_stats() is the only reset path.
    online->ensure_shard_count(server_->shard_count());
    if (options.live_stats_window > 0) online->set_window(options.live_stats_window);
    subscriber_guard.live_id =
        server_->add_drain_subscriber(online->shard_subscriber(), trace::DrainHandoff::kObserve);
  }
  if (!options.stream_export_path.empty()) {
    stream_file.open(options.stream_export_path, std::ios::binary | std::ios::trunc);
    if (!stream_file) {
      throw std::runtime_error("Session: cannot open stream_export_path: " +
                               options.stream_export_path);
    }
    if (options.stream_export_format == trace::ExportFormat::kBinary) {
      // Binary wire: sealed batches memcpy to the file; string bytes ship
      // once, as interning deltas. Same subscriber seam, different bytes.
      binary_writer = std::make_unique<trace::BinaryWriter>(stream_file);
      subscriber_guard.stream_id = server_->add_drain_subscriber(
          [writer = binary_writer.get()](const trace::SpanBatches& batches) {
            writer->write_batches(batches);
          },
          trace::DrainHandoff::kObserve);
    } else {
      stream_exporter = std::make_unique<trace::StreamingExporter>(
          options.stream_export_format, stream_file,
          /*with_metadata=*/options.stream_export_format == trace::ExportFormat::kSpanJson);
      subscriber_guard.stream_id = server_->add_drain_subscriber(
          [exporter = stream_exporter.get()](const trace::SpanBatches& batches) {
            exporter->write_batches(batches);
          },
          trace::DrainHandoff::kObserve);
    }
    subscriber_guard.partial_file = &options.stream_export_path;
  }
  // Remote forwarding: the same drain seam, but the bytes leave the
  // process — a RemoteSink ships raw publication spans to a collector
  // daemon over the binary wire. Observe mode, composing with the local
  // timeline, the file exporters, and the live analyzer above. The sink
  // persists across runs (one stream, its footer sent when the session
  // dies); a run naming a different endpoint closes the old stream first.
  if (!options.remote_endpoint.empty()) {
    if (remote_ == nullptr || remote_uri_ != options.remote_endpoint) {
      remote_.reset();  // close (footer + drain ack) before reconnecting
      remote_ = std::make_unique<trace::RemoteSink>(
          net::Endpoint::parse(options.remote_endpoint));
      remote_uri_ = options.remote_endpoint;
      if (metrics_registry_ != nullptr)
        remote_->bind_metrics(*metrics_registry_, metrics_labels_);
    }
    // The forwarded batches were already admitted by the fleet's sampler;
    // the sink uses the policy only to shed low-value spans first when
    // its outbox backs up (instead of dropping whole batches blind).
    remote_->set_sampler(sampler_);
    subscriber_guard.remote_id = server_->add_drain_subscriber(
        [sink = remote_.get()](const trace::SpanBatches& batches) {
          sink->write_batches(batches);
        },
        trace::DrainHandoff::kObserve);
  }

  model_tracer_ = std::make_unique<trace::Tracer>(*server_, "model_timer", trace::kModelLevel);
  layer_tracer_ =
      std::make_unique<trace::Tracer>(*server_, "framework_profiler", trace::kLayerLevel);
  library_tracer_ =
      std::make_unique<trace::Tracer>(*server_, "library_tracer", trace::kLibraryLevel);
  gpu_tracer_ = std::make_unique<trace::Tracer>(*server_, "cupti", trace::kKernelLevel);
  model_tracer_->set_enabled(options.model_level);
  layer_tracer_->set_enabled(options.layer_level);
  library_tracer_->set_enabled(options.library_level);
  gpu_tracer_->set_enabled(options.gpu_level);

  device_.reset();
  device_.set_timing_jitter(options.timing_jitter, options.jitter_seed);

  // Attach the GPU profiler before any device work, as nvprof/Nsight do.
  std::unique_ptr<cupti::CuptiProfiler> cupti_profiler;
  if (options.gpu_level) {
    cupti::CuptiOptions copts;
    if (options.gpu_metrics) {
      copts.metrics = {cupti::kFlopCountSp, cupti::kDramReadBytes, cupti::kDramWriteBytes,
                       cupti::kAchievedOccupancy};
    }
    cupti_profiler = std::make_unique<cupti::CuptiProfiler>(device_, copts);
    cupti_profiler->start();
  }

  const std::int64_t batch = graph.batch();
  const TimePoint pipeline_begin = clock_.now();

  // --- input pre-processing ----------------------------------------------
  const auto pre = start_span("Input Pre-Process");
  cpu_work(kPreprocessPerImage * batch);
  finish_span(pre);

  // --- model prediction (TF_SessionRun / MXPredForward analogue) ----------
  const auto predict = start_span("Model Prediction");
  framework::RunOptions ropts;
  ropts.enable_layer_profiling = options.layer_level;
  ropts.enable_library_profiling = options.library_level;
  const framework::RunResult run = executor_.run(graph, ropts);
  finish_span(predict);

  // --- output post-processing ----------------------------------------------
  const auto post = start_span("Output Post-Process");
  cpu_work(kPostprocessPerImage * batch);
  finish_span(post);

  const TimePoint pipeline_end = clock_.now();

  // --- offline conversion: framework profiler records -> layer spans ------
  // Layer spans are explicit children of the model-prediction span
  // (Section III-B point 2), so no interval search is needed for them.
  if (options.layer_level) {
    for (const auto& rec : run.layer_records) {
      trace::Span s;
      s.name = rec.name;
      s.kind = trace::SpanKind::kRegular;
      s.begin = rec.begin;
      s.end = rec.end;
      s.parent = predict;
      set_tag(s, keys().layer_type, rec.type);
      set_tag(s, keys().shape, rec.shape.str());
      set_metric(s, keys().layer_index, rec.index);
      set_metric(s, keys().alloc_bytes, rec.alloc_bytes);
      layer_tracer_->publish_completed(std::move(s));
    }
  }

  // --- offline conversion: library-call records -> library spans ----------
  // Library spans carry no explicit parent; interval containment nests them
  // under their layer (and kernels under them, when this level is on).
  if (options.library_level) {
    for (const auto& rec : run.library_records) {
      trace::Span s;
      s.name = rec.name;
      s.begin = rec.begin;
      s.end = rec.end;
      set_metric(s, keys().layer_index, rec.layer_index);
      library_tracer_->publish_completed(std::move(s));
    }
  }

  // --- offline conversion: CUPTI records -> launch/execution spans --------
  if (options.gpu_level) {
    cupti_profiler->stop();

    for (const auto& api : cupti_profiler->api_records()) {
      if (api.api != sim::ApiCallbackInfo::Api::kLaunchKernel &&
          api.api != sim::ApiCallbackInfo::Api::kMemcpy) {
        continue;
      }
      trace::Span s;
      s.name = sim::api_name(api.api);
      s.kind = trace::SpanKind::kLaunch;
      s.begin = api.begin;
      s.end = api.end;
      s.correlation_id = api.correlation_id;
      set_tag(s, keys().kernel, api.name);
      gpu_tracer_->publish_completed(std::move(s));
    }

    const auto& metric_records = cupti_profiler->metric_records();
    for (const auto& act : cupti_profiler->activity_records()) {
      trace::Span s;
      s.name = act.name;
      s.kind = trace::SpanKind::kExecution;
      s.begin = act.begin;
      s.end = act.end;
      s.correlation_id = act.correlation_id;
      if (act.type == sim::ActivityRecord::Type::kKernel) {
        // Grid/block dims are the canonical high-cardinality composed
        // values (the ROADMAP's unbounded-interning concern): inline
        // tags keep them out of the process-lifetime StringTable. No
        // aggregation keys on them (analysis keys on kernel/layer_type/
        // shape), so nothing downstream loses its StrId.
        set_inline_tag(s, keys().grid, "[" + std::to_string(act.kernel.grid.x) + "," +
                                           std::to_string(act.kernel.grid.y) + "," +
                                           std::to_string(act.kernel.grid.z) + "]");
        set_inline_tag(s, keys().block, "[" + std::to_string(act.kernel.block.x) + "," +
                                            std::to_string(act.kernel.block.y) + "," +
                                            std::to_string(act.kernel.block.z) + "]");
        set_tag(s, keys().kind, keys().kind_kernel);
      } else {
        set_tag(s, keys().kind, keys().kind_memcpy);
      }
      if (auto it = metric_records.find(act.correlation_id); it != metric_records.end()) {
        for (const auto& [metric, value] : it->second) set_metric(s, metric, value);
      }
      gpu_tracer_->publish_completed(std::move(s));
    }
  }

  RunTrace result;
  result.options = options;
  // Merge step: the per-shard batch lists concatenate in O(batches), and
  // assemble begin-orders the nodes, so shard count never changes the
  // assembled timeline. Buffers go back to the shard freelists, feeding
  // the next run on this session (the fleet outlives the run above).
  result.dropped_annotations = server_->dropped_annotation_count();
  result.trace_shards = server_->shard_count();
  // dropped_annotation_count() flushed every shard, so the admission
  // counters are settled for the run.
  result.sampled_kept = server_->sampled_kept_count() - sampled_kept_before;
  result.sampled_dropped = server_->sampled_dropped_count() - sampled_dropped_before;
  sampled_kept_total_ += result.sampled_kept;
  sampled_dropped_total_ += result.sampled_dropped;
  if (online != nullptr) {
    // Session-lifetime totals, matching the analyzer's cross-run
    // accumulation (injected before the streamed footer renders below).
    online->set_sampling_accounting(sampled_kept_total_, sampled_dropped_total_);
  }
  {
    const auto& table = common::StringTable::global();
    result.interned_strings = table.size();
    result.interned_bytes = table.approx_bytes();
    result.strtab_budget_bytes = table.budget_bytes();
    result.rejected_interns = table.rejected_interns();
  }
  // Slot health after the final flush above: worker threads that died
  // during the run have been reclaimed by now, so live_slots reports live
  // producers, not cumulative churn.
  result.live_slots = server_->live_slot_count();
  result.retired_slots = server_->retired_slot_count();
  result.slot_bytes = server_->approx_slot_bytes();
  if (subscriber_guard.remote_id != 0) {
    // dropped_annotation_count() above flushed every shard, so the remote
    // sink has been handed every span of the run. Detach the per-run
    // subscription, seal the partial batch toward the wire, and sample
    // the sink's session-cumulative accounting. Delivery stays async —
    // the sender thread keeps draining; only the handoff is complete.
    server_->remove_drain_subscriber(subscriber_guard.remote_id);
    subscriber_guard.remote_id = 0;
    remote_->flush();
    result.remote_spans = remote_->spans_published();
    result.remote_dropped_spans = remote_->spans_dropped();
    result.remote_reconnects = remote_->reconnects();
    // The stream footer (written when the session dies) carries the final
    // run's telemetry.
    remote_->set_meta(result.trace_meta());
  }
  if (stream_exporter != nullptr || binary_writer != nullptr) {
    // dropped_annotation_count() flushed every shard, so the subscriber
    // has observed every span of the run; detach, then finalize the file
    // with the run's telemetry in the footer.
    server_->remove_drain_subscriber(subscriber_guard.stream_id);
    subscriber_guard.stream_id = 0;
    subscriber_guard.partial_file = nullptr;
    if (stream_exporter != nullptr) {
      stream_exporter->set_meta(result.trace_meta());
      if (online != nullptr) {
        // Final online aggregates ride in the span-JSON metadata footer (a
        // no-op for the Chrome format, which has no metadata section).
        stream_exporter->set_footer_section("online",
                                            analysis::online_summary_json(online->snapshot()));
      }
      stream_exporter->finish();
      result.streamed_spans = stream_exporter->spans_written();
      result.streamed_bytes = stream_exporter->bytes_written();
    } else {
      binary_writer->set_meta(result.trace_meta());
      binary_writer->finish();
      result.streamed_spans = binary_writer->spans_written();
      result.streamed_bytes = binary_writer->bytes_written();
    }
    stream_file.close();
    if (!stream_file) {
      throw std::runtime_error("Session: short write to stream_export_path: " +
                               options.stream_export_path);
    }
  }
  trace::SpanBatches batches = server_->take_batches();
  result.timeline = trace::Timeline::assemble(batches);
  server_->recycle(std::move(batches));
  result.model_latency = run.latency();
  result.pipeline_latency = pipeline_end - pipeline_begin;
  return result;
}

}  // namespace xsp::profile
