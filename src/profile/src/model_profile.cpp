#include "xsp/profile/model_profile.hpp"

#include <algorithm>
#include <map>
#include <utility>

#include "xsp/profile/span_keys.hpp"

namespace xsp::profile {

Ns ModelProfile::total_kernel_latency() const noexcept {
  Ns total = 0;
  for (const auto& k : kernels) {
    if (!k.is_memcpy) total += k.latency;
  }
  return total;
}

double ModelProfile::total_flops() const noexcept {
  double total = 0;
  for (const auto& k : kernels) total += k.flops;
  return total;
}

double ModelProfile::total_dram_reads() const noexcept {
  double total = 0;
  for (const auto& k : kernels) total += k.dram_read_bytes;
  return total;
}

double ModelProfile::total_dram_writes() const noexcept {
  double total = 0;
  for (const auto& k : kernels) total += k.dram_write_bytes;
  return total;
}

double ModelProfile::weighted_occupancy() const noexcept {
  double weighted = 0;
  Ns total = 0;
  for (const auto& k : kernels) {
    if (k.is_memcpy) continue;
    weighted += k.achieved_occupancy * static_cast<double>(k.latency);
    total += k.latency;
  }
  return total > 0 ? weighted / static_cast<double>(total) : 0;
}

namespace {

const SpanKeys& keys() { return span_keys(); }

}  // namespace

ModelProfile merge_runs(const RunTrace& m, const RunTrace& ml, const RunTrace& mlg,
                        std::string model_name, std::string system_name,
                        std::string framework_name, std::int64_t batch) {
  ModelProfile out;
  out.model_name = std::move(model_name);
  out.system_name = std::move(system_name);
  out.framework_name = std::move(framework_name);
  out.batch = batch;
  out.model_latency = m.model_latency;
  out.pipeline_latency = m.pipeline_latency;
  if (ml.model_latency > 0) out.layer_profiling_overhead = ml.model_latency - m.model_latency;
  if (mlg.model_latency > 0 && ml.model_latency > 0) {
    out.gpu_profiling_overhead = mlg.model_latency - ml.model_latency;
  }

  // --- layers: accurate records from the M/L run --------------------------
  // Keyed by layer index so the M/L/G run's kernels can be attached.
  std::map<int, std::size_t> layer_slot;
  for (const auto id : ml.timeline.at_level(trace::kLayerLevel)) {
    const auto& span = ml.timeline.node(id).span;
    LayerView lv;
    lv.index = static_cast<int>(span.metric_or(keys().layer_index, -1));
    lv.name = span.name;
    lv.type = span.tag_or(keys().layer_type);
    lv.shape = span.tag_or(keys().shape);
    lv.latency = span.duration();
    lv.alloc_bytes = span.metric_or(keys().alloc_bytes, 0);
    layer_slot[lv.index] = out.layers.size();
    out.layers.push_back(std::move(lv));
  }

  // --- kernels: accurate records from the M/L/G run -----------------------
  // Kernel nodes hang under that run's layer spans; the layer_index metric
  // of the M/L/G layer span keys them back onto the accurate M/L layers.
  for (const auto id : mlg.timeline.at_level(trace::kKernelLevel)) {
    const auto& node = mlg.timeline.node(id);
    const auto& span = node.span;
    KernelView kv;
    kv.name = span.name;
    kv.latency = span.duration();
    kv.flops = span.metric_or(keys().flop_count_sp, 0);
    kv.dram_read_bytes = span.metric_or(keys().dram_read_bytes, 0);
    kv.dram_write_bytes = span.metric_or(keys().dram_write_bytes, 0);
    kv.achieved_occupancy = span.metric_or(keys().achieved_occupancy, 0);
    kv.is_memcpy = span.tag_or(keys().kind) == keys().kind_memcpy;
    // Walk ancestors until the layer span: with the optional ML-library
    // level enabled, a kernel's immediate parent is the cuDNN/cuBLAS call
    // span and the layer sits one level above it.
    trace::SpanId ancestor = node.parent;
    while (ancestor != trace::kNoSpan && mlg.timeline.contains(ancestor)) {
      const auto& anc = mlg.timeline.node(ancestor).span;
      if (anc.level == trace::kLayerLevel) {
        kv.layer_index = static_cast<int>(anc.metric_or(keys().layer_index, -1));
        break;
      }
      if (anc.level < trace::kLayerLevel) break;
      ancestor = mlg.timeline.node(ancestor).parent;
    }

    const std::size_t kid = out.kernels.size();
    if (auto slot = layer_slot.find(kv.layer_index); slot != layer_slot.end()) {
      LayerView& lv = out.layers[slot->second];
      lv.kernel_ids.push_back(kid);
      if (!kv.is_memcpy) {
        lv.kernel_latency += kv.latency;
        lv.flops += kv.flops;
        lv.dram_read_bytes += kv.dram_read_bytes;
        lv.dram_write_bytes += kv.dram_write_bytes;
        lv.achieved_occupancy += kv.achieved_occupancy * static_cast<double>(kv.latency);
      }
    }
    out.kernels.push_back(std::move(kv));
  }

  // Finalize the latency-weighted layer occupancies.
  for (auto& lv : out.layers) {
    if (lv.kernel_latency > 0) {
      lv.achieved_occupancy /= static_cast<double>(lv.kernel_latency);
    }
  }
  return out;
}

}  // namespace xsp::profile
