#include "xsp/profile/leveled.hpp"

#include <vector>

namespace xsp::profile {

LeveledRunner::LeveledRunner(const sim::GpuSpec& system, framework::FrameworkKind framework)
    : system_(system), framework_(framework) {}

LeveledResult LeveledRunner::run(const framework::Graph& graph, bool gpu_metrics,
                                 double timing_jitter, std::uint64_t seed) const {
  const auto with_jitter = [&](ProfileOptions o) {
    o.timing_jitter = timing_jitter;
    o.jitter_seed = seed;
    return o;
  };

  LeveledResult result;
  {
    Session session(system_, framework_);
    result.m = session.profile(graph, with_jitter(ProfileOptions::model_only()));
  }
  {
    Session session(system_, framework_);
    result.ml = session.profile(graph, with_jitter(ProfileOptions::model_layer()));
  }
  {
    Session session(system_, framework_);
    result.mlg = session.profile(graph, with_jitter(ProfileOptions::full(/*metrics=*/false)));
  }
  if (gpu_metrics) {
    Session session(system_, framework_);
    result.mlgm = session.profile(graph, with_jitter(ProfileOptions::full(/*metrics=*/true)));
  }
  const RunTrace& kernel_source = gpu_metrics ? result.mlgm : result.mlg;
  result.profile =
      merge_runs(result.m, result.ml, kernel_source, graph.model_name, system_.name,
                 framework::framework_name(framework_), graph.batch());
  // Overheads are quantified from the activity-level ladder regardless of
  // which run supplied the kernel records.
  result.profile.gpu_profiling_overhead = result.mlg.model_latency - result.ml.model_latency;
  return result;
}

LeveledResult LeveledRunner::run_model(const models::ModelInfo& model, std::int64_t batch,
                                       bool gpu_metrics) const {
  return run(model.build(batch, decompose_batchnorm()), gpu_metrics);
}

Ns LeveledRunner::model_latency(const framework::Graph& graph, double timing_jitter,
                                std::uint64_t seed) const {
  Session session(system_, framework_);
  auto opts = ProfileOptions::model_only();
  opts.timing_jitter = timing_jitter;
  opts.jitter_seed = seed;
  return session.profile(graph, opts).model_latency;
}

Summary LeveledRunner::repeated_model_latency_ms(const framework::Graph& graph, int runs,
                                                 double timing_jitter) const {
  std::vector<double> samples;
  samples.reserve(static_cast<std::size_t>(runs));
  for (int i = 0; i < runs; ++i) {
    samples.push_back(
        to_ms(model_latency(graph, timing_jitter, static_cast<std::uint64_t>(i) + 1)));
  }
  return summarize(samples);
}

}  // namespace xsp::profile
