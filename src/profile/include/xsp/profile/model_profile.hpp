// ModelProfile: the merged, accurate, analysis-facing view of one model
// evaluation, assembled from the leveled-experimentation runs.
//
// Leveled experimentation (paper Section III-C): profilers at level n are
// accurate when profilers up to exactly level n are enabled. XSP therefore
// merges:
//   * the model latency from the M-only run,
//   * the per-layer records from the M/L run,
//   * the per-kernel records (and their layer correlation) from the
//     M/L/G run,
// and quantifies each level's profiling overhead by subtraction.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "xsp/common/string_table.hpp"
#include "xsp/common/time.hpp"
#include "xsp/profile/session.hpp"

namespace xsp::profile {

/// One GPU kernel (or memcpy) invocation, correlated to its layer. Names
/// are interned StrIds so analyses aggregate by 32-bit id comparison; use
/// .str()/.view() at presentation boundaries.
struct KernelView {
  common::StrId name;
  int layer_index = -1;  ///< -1 when no layer profile was available
  Ns latency = 0;
  double flops = 0;
  double dram_read_bytes = 0;
  double dram_write_bytes = 0;
  double achieved_occupancy = 0;
  bool is_memcpy = false;

  [[nodiscard]] double dram_bytes() const noexcept { return dram_read_bytes + dram_write_bytes; }
};

/// One executed layer with its (accurate) latency, memory allocation, and
/// aggregated GPU-kernel statistics.
struct LayerView {
  int index = 0;
  common::StrId name;
  common::StrId type;   ///< "Conv2D", "Mul", ...
  common::StrId shape;  ///< output shape, "<256, 512, 7, 7>"
  Ns latency = 0;     ///< from the M/L run (accurate at layer level)
  double alloc_bytes = 0;

  // Aggregates over the layer's kernels, from the M/L/G run.
  Ns kernel_latency = 0;
  double flops = 0;
  double dram_read_bytes = 0;
  double dram_write_bytes = 0;
  /// Weighted (by kernel latency) achieved occupancy, as the paper's A11.
  double achieved_occupancy = 0;
  std::vector<std::size_t> kernel_ids;  ///< indices into ModelProfile::kernels

  [[nodiscard]] Ns non_gpu_latency() const noexcept {
    const Ns d = latency - kernel_latency;
    return d > 0 ? d : 0;
  }
  [[nodiscard]] double dram_bytes() const noexcept { return dram_read_bytes + dram_write_bytes; }
};

struct ModelProfile {
  std::string model_name;
  std::string system_name;
  std::string framework_name;
  std::int64_t batch = 1;

  Ns model_latency = 0;     ///< accurate (M-only run)
  Ns pipeline_latency = 0;  ///< pre + predict + post (M-only run)
  std::vector<LayerView> layers;
  std::vector<KernelView> kernels;

  /// Overheads quantified by leveled experimentation.
  Ns layer_profiling_overhead = 0;  ///< (M/L latency) - (M latency)
  Ns gpu_profiling_overhead = 0;    ///< (M/L/G latency) - (M/L latency)

  /// Total latency of all GPU *kernel* calls (memcpys excluded), i.e. the
  /// "GPU latency" of the paper's Table IX.
  [[nodiscard]] Ns total_kernel_latency() const noexcept;
  [[nodiscard]] double total_flops() const noexcept;
  [[nodiscard]] double total_dram_reads() const noexcept;
  [[nodiscard]] double total_dram_writes() const noexcept;
  /// Latency-weighted achieved occupancy across all kernels.
  [[nodiscard]] double weighted_occupancy() const noexcept;
};

/// Merge the three leveled runs into the accurate profile. `ml` and `mlg`
/// may be default-constructed (empty timelines) when those levels were not
/// profiled; the merged profile then simply lacks layers/kernels.
ModelProfile merge_runs(const RunTrace& m, const RunTrace& ml, const RunTrace& mlg,
                        std::string model_name, std::string system_name,
                        std::string framework_name, std::int64_t batch);

}  // namespace xsp::profile
