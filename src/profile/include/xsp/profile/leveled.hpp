// Leveled experimentation runner (paper Section III-C).
//
// "We refer to the profiling practice which uses traces from multiple runs
//  with different profiling levels as leveled experimentation. Through
//  leveled experimentation, XSP gets accurate timing of profiled events at
//  all stack levels."
#pragma once

#include <cstdint>
#include <vector>

#include "xsp/common/statistics.hpp"
#include "xsp/framework/executor.hpp"
#include "xsp/models/registry.hpp"
#include "xsp/profile/model_profile.hpp"
#include "xsp/profile/session.hpp"
#include "xsp/sim/gpu_spec.hpp"

namespace xsp::profile {

/// Result of one full leveled experiment, merged.
///
/// Three runs climb the profiling ladder (M, M/L, M/L/G with activity
/// tracing) to quantify each level's overhead by subtraction — the paper's
/// Figure 2. When GPU metrics are requested, a fourth run collects the
/// hardware counters; its (replay-dominated, >100x — Section III-C) cost
/// never contaminates the overhead numbers, and its per-kernel *durations*
/// are identical to the activity run's because CUPTI reports a single
/// replay's timing.
struct LeveledResult {
  RunTrace m;
  RunTrace ml;
  RunTrace mlg;   ///< GPU activity tracing, no metrics
  RunTrace mlgm;  ///< GPU metric collection (empty unless requested)
  ModelProfile profile;

  [[nodiscard]] Ns layer_overhead() const noexcept { return ml.model_latency - m.model_latency; }
  [[nodiscard]] Ns gpu_overhead() const noexcept { return mlg.model_latency - ml.model_latency; }
  /// Cost of the metric-collection run relative to the activity run — the
  /// kernel-replay slowdown factor.
  [[nodiscard]] double metric_slowdown() const noexcept {
    return mlg.model_latency > 0 && mlgm.model_latency > 0
               ? static_cast<double>(mlgm.model_latency) / static_cast<double>(mlg.model_latency)
               : 0;
  }
};

/// Runs models through the M -> M/L -> M/L/G ladder on one system+framework.
class LeveledRunner {
 public:
  LeveledRunner(const sim::GpuSpec& system, framework::FrameworkKind framework);

  /// Full leveled experiment on a prebuilt graph.
  LeveledResult run(const framework::Graph& graph, bool gpu_metrics = true,
                    double timing_jitter = 0, std::uint64_t seed = 0) const;

  /// Convenience: build `model` at `batch` for this runner's framework and
  /// run the full experiment.
  LeveledResult run_model(const models::ModelInfo& model, std::int64_t batch,
                          bool gpu_metrics = true) const;

  /// Cheap model-only (M) run returning the accurate model latency.
  Ns model_latency(const framework::Graph& graph, double timing_jitter = 0,
                   std::uint64_t seed = 0) const;

  /// Repeated M-only evaluations with deterministic jitter, summarized the
  /// way the paper's analysis pipeline summarizes multi-run data (trimmed
  /// mean et al., Section III-D).
  Summary repeated_model_latency_ms(const framework::Graph& graph, int runs,
                                    double timing_jitter = 0.02) const;

  [[nodiscard]] const sim::GpuSpec& system() const noexcept { return system_; }
  [[nodiscard]] framework::FrameworkKind framework() const noexcept { return framework_; }
  [[nodiscard]] bool decompose_batchnorm() const noexcept {
    return framework::traits_for(framework_).decompose_batchnorm;
  }

 private:
  sim::GpuSpec system_;
  framework::FrameworkKind framework_;
};

}  // namespace xsp::profile
