// XSP profiling session: one evaluation of one model at one profiling
// level, producing one timeline trace.
//
// The session wires together the three tracers of the paper's GPU design
// (Section III-B):
//   1. model-level — the startSpan/finishSpan tracing API placed around
//      code regions of interest (pre-process, prediction, post-process);
//   2. layer-level — the framework profiler's records converted to spans
//      offline and parented onto the model-prediction span;
//   3. GPU-kernel-level — CUPTI callback records become launch spans and
//      CUPTI activity records become execution spans, joined by
//      correlation_id; metric values attach to the execution spans.
//
// No framework modification happens anywhere: the layer tracer consumes
// the profiler's *output records* and the GPU tracer consumes CUPTI
// records, exactly as the paper prescribes.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "xsp/analysis/online.hpp"
#include "xsp/common/clock.hpp"
#include "xsp/cupti/cupti.hpp"
#include "xsp/framework/executor.hpp"
#include "xsp/metrics/registry.hpp"
#include "xsp/sim/device.hpp"
#include "xsp/trace/export.hpp"
#include "xsp/trace/remote_sink.hpp"
#include "xsp/trace/sharded_trace_server.hpp"
#include "xsp/trace/timeline.hpp"
#include "xsp/trace/trace_server.hpp"
#include "xsp/trace/tracer.hpp"

namespace xsp::profile {

/// Which stack levels to profile. The paper's M, M/L and M/L/G runs.
struct ProfileOptions {
  bool model_level = true;
  bool layer_level = false;
  /// ML-library (cuDNN/cuBLAS call) level between layer and kernel —
  /// the paper's Section III-E extension.
  bool library_level = false;
  bool gpu_level = false;
  /// Collect the four GPU metrics of Section III-D3 (requires gpu_level;
  /// expensive: kernels are replayed per counter group).
  bool gpu_metrics = false;
  trace::PublishMode publish_mode = trace::PublishMode::kAsync;
  /// Trace-server shards to collect into. 1 (default) collects into a
  /// single server; 0 means one shard per hardware thread (capped); >1
  /// fans publication out across that many independent shards, merged at
  /// assembly. Sessions are single-threaded, so >1 only matters when the
  /// session's trace plumbing is shared with concurrent publishers — but
  /// any setting yields an identical assembled timeline.
  std::size_t trace_shards = 1;
  /// How publishers map to shards when trace_shards != 1.
  trace::ShardPolicy shard_policy = trace::ShardPolicy::kByThread;
  /// Deterministic timing jitter (fraction; 0 disables) + seed, for
  /// multi-run statistics.
  double timing_jitter = 0;
  std::uint64_t jitter_seed = 0;
  /// When non-empty, the run's spans are additionally streamed to this
  /// file *as they drain* from the trace server (a StreamingExporter
  /// attached as a drain subscriber on every shard), in publication form:
  /// raw spans, pre-assembly, launch/execution pairs unmerged. The
  /// in-memory timeline in RunTrace is unaffected. The file is finalized
  /// (footer + metadata) before profile() returns; if the run throws, the
  /// partial file is removed so a failed run never leaves a valid-looking
  /// export behind.
  std::string stream_export_path;
  /// Document shape for stream_export_path (span JSON carries a metadata
  /// footer with the run's dropped-annotation/shard telemetry).
  /// ExportFormat::kBinary selects the XSP binary wire format (wire.hpp):
  /// a trace::BinaryWriter drain subscriber memcpys sealed batches to the
  /// file instead of formatting JSON — the low-overhead shape for
  /// production streaming; decode with trace::BinaryReader or
  /// `trace_export --decode`.
  trace::ExportFormat stream_export_format = trace::ExportFormat::kChromeTrace;
  /// When non-empty, the run's spans are additionally forwarded to a
  /// collector daemon (xsp_collectd) at this endpoint URI — "unix:/path"
  /// or "tcp://host:port" — through a trace::RemoteSink attached as an
  /// observe-mode drain subscriber: raw publication spans ship over the
  /// binary wire as the shards drain, while the in-memory timeline is
  /// unaffected. The sink (and its connection) persists across profile()
  /// calls on one session — one wire stream per session, footer sent when
  /// the session dies or the endpoint changes. Unreachable daemons never
  /// fail the run: delivery is best-effort with bounded buffering, and
  /// losses surface in RunTrace::remote_dropped_spans, not as errors.
  std::string remote_endpoint;
  /// Maintain live online aggregates (analysis::OnlineAnalyzer) from the
  /// run's span stream: an observe-mode drain subscriber on every shard
  /// feeds per-layer-type/per-kernel aggregates, latency percentiles,
  /// sliding-window rates, and per-shard load counters — readable at any
  /// moment via Session::live_snapshot(), including mid-run from another
  /// thread (the xsp_top dashboard). The analyzer persists across
  /// profile() calls on one session, so aggregates accumulate over a
  /// service's lifetime; composes with stream_export_path (both are
  /// observers), and a span-JSON streamed export gains an "online"
  /// metadata footer section with the final aggregates.
  bool live_stats = false;
  /// Sliding window (simulated time) for the live span/s and GPU-busy
  /// stats; 0 keeps the analyzer default.
  Ns live_stats_window = 0;
  /// Head-sampling rate in (0, 1]: the fraction of spans admitted into
  /// the collection fleet (a trace::Sampler set on every shard). The
  /// decision is a deterministic hash of the correlation id, so a kept
  /// request keeps *all* of its spans across tracers and shards; 1.0
  /// (default) disables sampling entirely — the publish path is the
  /// pass-through fast path, within noise of an unsampled build.
  /// Sheds surface in RunTrace::sampled_dropped and, when live_stats is
  /// on, the analyzer rescales its rate/count estimates by the effective
  /// rate (Horvitz-Thompson), so dashboards stay calibrated.
  double sampling_rate = 1.0;
  /// Tail-keep escape hatch: spans at least this long are admitted
  /// regardless of the hash draw (0 disables). Latency outliers survive
  /// aggressive rates; such spans carry effective rate 1.0 so the
  /// rescaled estimates stay unbiased.
  Ns sampling_tail_keep_ns = 0;
  /// Seed for the sampling hash — distinct seeds sample distinct subsets
  /// at the same rate (multi-run variance estimation).
  std::uint64_t sampling_seed = 0;
  /// Bound the live analyzer's per-kernel table to this many rows via
  /// SpaceSaving top-k (0 = exact, unbounded). Applies when the analyzer
  /// is created — the first live_stats run on this session.
  std::size_t top_k_kernels = 0;
  /// Byte budget for the process-global StringTable (0 = unbounded).
  /// Applied at the start of the run via StringTable::set_budget_bytes:
  /// past the budget, intern() stops growing the table and returns the
  /// reserved "<interned-cap>" sentinel id instead, counting the miss in
  /// rejected_interns. The budget is process-global state — the last run
  /// to set a non-zero value wins, and it persists after the run (a
  /// service sets it once). High-cardinality values belong in inline
  /// tags (Tracer::tag_inline), which never touch the table at all.
  std::size_t strtab_budget_bytes = 0;

  [[nodiscard]] std::string level_string() const;  // "M", "M/L", "M/L/G"

  static ProfileOptions model_only() { return {}; }
  static ProfileOptions model_layer() {
    ProfileOptions o;
    o.layer_level = true;
    return o;
  }
  static ProfileOptions full(bool metrics = true) {
    ProfileOptions o;
    o.layer_level = true;
    o.gpu_level = true;
    o.gpu_metrics = metrics;
    return o;
  }
};

/// The result of one profiled evaluation.
struct RunTrace {
  ProfileOptions options;
  trace::Timeline timeline;
  /// Duration of the model-prediction span *in this run* (includes the
  /// overhead of whatever profilers were enabled below the model level).
  Ns model_latency = 0;
  /// Duration of the whole pipeline (pre-process + predict + post-process).
  Ns pipeline_latency = 0;
  /// Server-level aggregate of annotations dropped to capacity limits
  /// during this run (trace fidelity telemetry; 0 means lossless).
  std::uint64_t dropped_annotations = 0;
  /// Shards the trace was collected across (for export metadata).
  std::size_t trace_shards = 1;
  /// Spans written to stream_export_path (0 when streaming was off). This
  /// counts *raw publication* spans, so with GPU tracing it exceeds
  /// timeline.size(): launch/execution pairs stream unmerged and are only
  /// joined at assembly.
  std::uint64_t streamed_spans = 0;
  /// Bytes written to stream_export_path (0 when streaming was off) — the
  /// export-cost figure that makes format overheads comparable: the same
  /// run streamed as span JSON vs binary differs by an order of magnitude
  /// here. Also surfaced in the span-JSON footer as "export_bytes" and in
  /// the binary footer frame.
  std::uint64_t streamed_bytes = 0;
  /// Global StringTable growth telemetry sampled at the end of the run:
  /// distinct interned strings and their approximate resident bytes. The
  /// table never evicts, so across runs these only grow — the signal a
  /// long-running multi-model service watches for interned-annotation
  /// growth (see ROADMAP).
  std::uint64_t interned_strings = 0;
  std::uint64_t interned_bytes = 0;
  /// Producer-slot health of the collection fleet sampled at the end of
  /// the run: slots currently registered (live producer threads), slots
  /// retired by thread-exit reclamation over the fleet's lifetime, and
  /// approximate bytes resident in slots. In a long-running service fed
  /// by short-lived worker threads, live_slots staying O(live threads)
  /// while retired_slots tracks cumulative churn is the signal that slot
  /// reclamation is working (see ROADMAP "Producer-slot reclamation").
  std::uint64_t live_slots = 0;
  std::uint64_t retired_slots = 0;
  std::uint64_t slot_bytes = 0;
  /// Remote-forwarding telemetry (ProfileOptions::remote_endpoint), all 0
  /// when no remote sink is attached: spans handed to the RemoteSink over
  /// the session's lifetime, spans it dropped under backpressure or
  /// disconnect (accounted, never silent), and reconnects performed.
  /// Cumulative per session, like the sink's single wire stream.
  std::uint64_t remote_spans = 0;
  std::uint64_t remote_dropped_spans = 0;
  std::uint64_t remote_reconnects = 0;
  /// Sampling admission accounting for *this run* (ProfileOptions::
  /// sampling_rate): spans the fleet's sampler admitted / rejected.
  /// Both 0 when no sampler was attached; with one, every publication
  /// lands in exactly one bucket — published == sampled_kept +
  /// sampled_dropped, the invariant the admission tests pin.
  std::uint64_t sampled_kept = 0;
  std::uint64_t sampled_dropped = 0;
  /// Bounded-interning telemetry sampled at the end of the run, alongside
  /// interned_strings/interned_bytes: the budget in force (0 = unbounded)
  /// and the global table's *lifetime* count of interns rejected at the
  /// budget or slot ceiling (monotone across runs, like the table itself).
  /// A non-zero rejected_interns means some StrIds in the trace resolve
  /// to the "<interned-cap>" sentinel string.
  std::uint64_t strtab_budget_bytes = 0;
  std::uint64_t rejected_interns = 0;

  /// Export metadata for to_span_json(timeline, meta).
  [[nodiscard]] trace::TraceMeta trace_meta() const noexcept {
    return {dropped_annotations, trace_shards,  interned_strings,
            interned_bytes,      live_slots,    retired_slots,
            slot_bytes,          remote_dropped_spans, remote_reconnects,
            sampled_kept,        sampled_dropped,      strtab_budget_bytes,
            rejected_interns};
  }
};

/// Point-in-time producer-slot health of a session's collection fleet
/// (Session::slot_telemetry(); the xsp_top slot-health line).
struct SlotTelemetry {
  std::uint64_t live_slots = 0;
  std::uint64_t retired_slots = 0;
  std::uint64_t pooled_slots = 0;
  std::uint64_t slot_bytes = 0;
};

/// One evaluation environment: a system, a framework, and the tracing
/// plumbing. Sessions are single-threaded and cheap to construct; build a
/// fresh one per run for fully independent virtual timelines.
class Session {
 public:
  Session(const sim::GpuSpec& system, framework::FrameworkKind framework);

  /// The model-level tracing API (paper Section III-B, point 1). Spans
  /// started here are model-level; nesting is by explicit parent.
  trace::SpanId start_span(trace::StrId name, trace::SpanId parent = trace::kNoSpan);
  void finish_span(trace::SpanId id);

  /// Simulated CPU work inside user code (pre/post-processing bodies).
  void cpu_work(Ns duration) { clock_.advance(duration); }

  /// Profile one inference of `graph` end-to-end: input pre-processing,
  /// model prediction, output post-processing, with the levels requested.
  RunTrace profile(const framework::Graph& graph, const ProfileOptions& options);

  /// Point-in-time copy of the live online aggregates. Thread-safe and
  /// callable *during* a profile() run from another thread — the analyzer
  /// observes batches as the shards drain them, so the snapshot tracks
  /// publication, not run completion. Returns a default (all-zero)
  /// snapshot until a run with ProfileOptions::live_stats has started.
  [[nodiscard]] analysis::OnlineSnapshot live_snapshot() const;

  /// Forget accumulated live aggregates (the analyzer persists across
  /// runs; a service rolling its stats window calls this between epochs).
  void reset_live_stats();

  /// The live analyzer itself — nullptr until the first live_stats run
  /// has started. The surface for the analyzer APIs beyond snapshots:
  /// alert registration (add_alert/poll_alerts) from a serving layer or
  /// dashboard thread.
  [[nodiscard]] std::shared_ptr<analysis::OnlineAnalyzer> live_analyzer() const;

  /// Producer-slot health of the collection fleet right now. Thread-safe
  /// and callable mid-run from another thread (the xsp_top dashboard
  /// pairs it with live_snapshot()); all zeros before the first run.
  [[nodiscard]] SlotTelemetry slot_telemetry() const;

  /// Register the session's collection machinery with a self-metrics
  /// registry: every fleet shard's series (TraceServer::bind_metrics,
  /// labeled by shard under `labels`) and, when remote forwarding is
  /// active, the RemoteSink's health series. profile() rebinds
  /// automatically whenever it reconfigures the fleet or reconnects the
  /// sink, so the registry tracks the *current* fleet across runs. Pass
  /// nullptr to stop binding (existing series unregister when their
  /// components die). The registry must outlive the session or the next
  /// unbind, whichever comes first. Zero publish-hot-path cost — see
  /// TraceServer::bind_metrics.
  void bind_metrics(metrics::Registry* registry, metrics::Labels labels = {});

  [[nodiscard]] sim::GpuDevice& device() noexcept { return device_; }
  [[nodiscard]] SimClock& clock() noexcept { return clock_; }
  [[nodiscard]] framework::Executor& executor() noexcept { return executor_; }

  /// Per-image costs of the (simulated) pre-/post-processing steps.
  static constexpr Ns kPreprocessPerImage = us(120);
  static constexpr Ns kPostprocessPerImage = us(20);

 private:
  SimClock clock_;
  sim::GpuDevice device_;
  framework::Executor executor_;
  /// Collection fleet. server_mu_ guards the *pointer* (profile() may
  /// replace a reconfigured fleet) so slot_telemetry() can read from a
  /// dashboard thread; calls INTO a live fleet are themselves
  /// thread-safe and need no session-level lock.
  mutable std::mutex server_mu_;
  std::unique_ptr<trace::ShardedTraceServer> server_;
  /// Live-stats analyzer (ProfileOptions::live_stats). Created on the
  /// first live run and kept for the session's lifetime (reconfigured in
  /// place on shard/window changes, never silently replaced — lifetime
  /// aggregates survive); shared_ptr behind a mutex so live_snapshot()
  /// from a dashboard thread races safely with that first creation.
  mutable std::mutex online_mu_;
  std::shared_ptr<analysis::OnlineAnalyzer> online_;
  /// Remote forwarding (ProfileOptions::remote_endpoint): one RemoteSink
  /// — one wire stream, one collector connection — for the session's
  /// lifetime. Destroyed (closing the stream: outbox drained, footer
  /// sent) with the session, or replaced when a run names a different
  /// endpoint.
  std::unique_ptr<trace::RemoteSink> remote_;
  std::string remote_uri_;
  /// Admission policy built from ProfileOptions::sampling_* (nullptr when
  /// rate is 1.0 and no tail-keep): shared by the fleet, the remote sink,
  /// and the live analyzer so one decision governs admission, shedding,
  /// and rescaling. Rebuilt only when the options change.
  std::shared_ptr<const trace::Sampler> sampler_;
  /// Session-lifetime admission totals (the analyzer accumulates across
  /// runs, so it gets these, not per-run deltas).
  std::uint64_t sampled_kept_total_ = 0;
  std::uint64_t sampled_dropped_total_ = 0;
  std::unique_ptr<trace::Tracer> model_tracer_;
  std::unique_ptr<trace::Tracer> layer_tracer_;
  std::unique_ptr<trace::Tracer> library_tracer_;
  std::unique_ptr<trace::Tracer> gpu_tracer_;
  /// Self-metrics binding (bind_metrics): applied to the live fleet and
  /// sink, and re-applied by profile() after reconfiguration.
  metrics::Registry* metrics_registry_ = nullptr;
  metrics::Labels metrics_labels_;
  /// Bounded-interning series (xsp_strtab_*): callback series over the
  /// process-global StringTable, registered once per bind_metrics call —
  /// unlike the fleet series they never need rebinding on fleet swaps.
  std::vector<metrics::CallbackHandle> strtab_series_;
};

}  // namespace xsp::profile
