// XSP profiling session: one evaluation of one model at one profiling
// level, producing one timeline trace.
//
// The session wires together the three tracers of the paper's GPU design
// (Section III-B):
//   1. model-level — the startSpan/finishSpan tracing API placed around
//      code regions of interest (pre-process, prediction, post-process);
//   2. layer-level — the framework profiler's records converted to spans
//      offline and parented onto the model-prediction span;
//   3. GPU-kernel-level — CUPTI callback records become launch spans and
//      CUPTI activity records become execution spans, joined by
//      correlation_id; metric values attach to the execution spans.
//
// No framework modification happens anywhere: the layer tracer consumes
// the profiler's *output records* and the GPU tracer consumes CUPTI
// records, exactly as the paper prescribes.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "xsp/common/clock.hpp"
#include "xsp/cupti/cupti.hpp"
#include "xsp/framework/executor.hpp"
#include "xsp/sim/device.hpp"
#include "xsp/trace/export.hpp"
#include "xsp/trace/sharded_trace_server.hpp"
#include "xsp/trace/timeline.hpp"
#include "xsp/trace/trace_server.hpp"
#include "xsp/trace/tracer.hpp"

namespace xsp::profile {

/// Which stack levels to profile. The paper's M, M/L and M/L/G runs.
struct ProfileOptions {
  bool model_level = true;
  bool layer_level = false;
  /// ML-library (cuDNN/cuBLAS call) level between layer and kernel —
  /// the paper's Section III-E extension.
  bool library_level = false;
  bool gpu_level = false;
  /// Collect the four GPU metrics of Section III-D3 (requires gpu_level;
  /// expensive: kernels are replayed per counter group).
  bool gpu_metrics = false;
  trace::PublishMode publish_mode = trace::PublishMode::kAsync;
  /// Trace-server shards to collect into. 1 (default) collects into a
  /// single server; 0 means one shard per hardware thread (capped); >1
  /// fans publication out across that many independent shards, merged at
  /// assembly. Sessions are single-threaded, so >1 only matters when the
  /// session's trace plumbing is shared with concurrent publishers — but
  /// any setting yields an identical assembled timeline.
  std::size_t trace_shards = 1;
  /// How publishers map to shards when trace_shards != 1.
  trace::ShardPolicy shard_policy = trace::ShardPolicy::kByThread;
  /// Deterministic timing jitter (fraction; 0 disables) + seed, for
  /// multi-run statistics.
  double timing_jitter = 0;
  std::uint64_t jitter_seed = 0;
  /// When non-empty, the run's spans are additionally streamed to this
  /// file *as they drain* from the trace server (a StreamingExporter
  /// attached as a drain subscriber on every shard), in publication form:
  /// raw spans, pre-assembly, launch/execution pairs unmerged. The
  /// in-memory timeline in RunTrace is unaffected. The file is finalized
  /// (footer + metadata) before profile() returns; if the run throws, the
  /// partial file is removed so a failed run never leaves a valid-looking
  /// export behind.
  std::string stream_export_path;
  /// Document shape for stream_export_path (span JSON carries a metadata
  /// footer with the run's dropped-annotation/shard telemetry).
  trace::ExportFormat stream_export_format = trace::ExportFormat::kChromeTrace;

  [[nodiscard]] std::string level_string() const;  // "M", "M/L", "M/L/G"

  static ProfileOptions model_only() { return {}; }
  static ProfileOptions model_layer() {
    ProfileOptions o;
    o.layer_level = true;
    return o;
  }
  static ProfileOptions full(bool metrics = true) {
    ProfileOptions o;
    o.layer_level = true;
    o.gpu_level = true;
    o.gpu_metrics = metrics;
    return o;
  }
};

/// The result of one profiled evaluation.
struct RunTrace {
  ProfileOptions options;
  trace::Timeline timeline;
  /// Duration of the model-prediction span *in this run* (includes the
  /// overhead of whatever profilers were enabled below the model level).
  Ns model_latency = 0;
  /// Duration of the whole pipeline (pre-process + predict + post-process).
  Ns pipeline_latency = 0;
  /// Server-level aggregate of annotations dropped to capacity limits
  /// during this run (trace fidelity telemetry; 0 means lossless).
  std::uint64_t dropped_annotations = 0;
  /// Shards the trace was collected across (for export metadata).
  std::size_t trace_shards = 1;
  /// Spans written to stream_export_path (0 when streaming was off). This
  /// counts *raw publication* spans, so with GPU tracing it exceeds
  /// timeline.size(): launch/execution pairs stream unmerged and are only
  /// joined at assembly.
  std::uint64_t streamed_spans = 0;

  /// Export metadata for to_span_json(timeline, meta).
  [[nodiscard]] trace::TraceMeta trace_meta() const noexcept {
    return {dropped_annotations, trace_shards};
  }
};

/// One evaluation environment: a system, a framework, and the tracing
/// plumbing. Sessions are single-threaded and cheap to construct; build a
/// fresh one per run for fully independent virtual timelines.
class Session {
 public:
  Session(const sim::GpuSpec& system, framework::FrameworkKind framework);

  /// The model-level tracing API (paper Section III-B, point 1). Spans
  /// started here are model-level; nesting is by explicit parent.
  trace::SpanId start_span(trace::StrId name, trace::SpanId parent = trace::kNoSpan);
  void finish_span(trace::SpanId id);

  /// Simulated CPU work inside user code (pre/post-processing bodies).
  void cpu_work(Ns duration) { clock_.advance(duration); }

  /// Profile one inference of `graph` end-to-end: input pre-processing,
  /// model prediction, output post-processing, with the levels requested.
  RunTrace profile(const framework::Graph& graph, const ProfileOptions& options);

  [[nodiscard]] sim::GpuDevice& device() noexcept { return device_; }
  [[nodiscard]] SimClock& clock() noexcept { return clock_; }
  [[nodiscard]] framework::Executor& executor() noexcept { return executor_; }

  /// Per-image costs of the (simulated) pre-/post-processing steps.
  static constexpr Ns kPreprocessPerImage = us(120);
  static constexpr Ns kPostprocessPerImage = us(20);

 private:
  SimClock clock_;
  sim::GpuDevice device_;
  framework::Executor executor_;
  std::unique_ptr<trace::ShardedTraceServer> server_;
  std::unique_ptr<trace::Tracer> model_tracer_;
  std::unique_ptr<trace::Tracer> layer_tracer_;
  std::unique_ptr<trace::Tracer> library_tracer_;
  std::unique_ptr<trace::Tracer> gpu_tracer_;
};

}  // namespace xsp::profile
