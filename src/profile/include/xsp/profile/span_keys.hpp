// The annotation-key contract between span producers (Session's offline
// record->span conversions) and consumers (merge_runs). One definition so
// a renamed key is a compile-visible edit on both sides, interned once per
// process.
#pragma once

#include "xsp/cupti/cupti.hpp"
#include "xsp/trace/span.hpp"

namespace xsp::profile {

struct SpanKeys {
  trace::StrId layer_type{"layer_type"};
  trace::StrId shape{"shape"};
  trace::StrId layer_index{"layer_index"};
  trace::StrId alloc_bytes{"alloc_bytes"};
  trace::StrId kernel{"kernel"};
  trace::StrId grid{"grid"};
  trace::StrId block{"block"};
  trace::StrId kind{"kind"};
  trace::StrId kind_kernel{"kernel"};
  trace::StrId kind_memcpy{"memcpy"};
  trace::StrId flop_count_sp{cupti::kFlopCountSp};
  trace::StrId dram_read_bytes{cupti::kDramReadBytes};
  trace::StrId dram_write_bytes{cupti::kDramWriteBytes};
  trace::StrId achieved_occupancy{cupti::kAchievedOccupancy};
};

inline const SpanKeys& span_keys() {
  static const SpanKeys k;
  return k;
}

}  // namespace xsp::profile
