#include "xsp/framework/executor.hpp"

#include <utility>

#include "xsp/dnn/conv.hpp"

namespace xsp::framework {

const char* framework_name(FrameworkKind k) {
  switch (k) {
    case FrameworkKind::kTFlow: return "TFlow";
    case FrameworkKind::kMXLite: return "MXLite";
  }
  return "?";
}

FrameworkTraits traits_for(FrameworkKind kind) {
  FrameworkTraits t;
  switch (kind) {
    case FrameworkKind::kTFlow:
      t.ew_backend = dnn::EwBackend::kEigen;
      t.decompose_batchnorm = true;
      t.per_layer_dispatch_ns = us(9);
      t.fixed_run_overhead_ns = us(200);
      break;
    case FrameworkKind::kMXLite:
      t.ew_backend = dnn::EwBackend::kMxMath;
      t.decompose_batchnorm = false;
      // MXNet's per-inference engine overhead is batch-independent ("fixed"
      // in the paper's sense) but grows with the executed layer count:
      // ResNet_v1_50 shows 4.44 ms non-GPU at batch 1 across ~180 fused
      // layers (~25 us/layer), while MobileNets with far fewer layers match
      // TensorFlow's online latency (Table X).
      t.per_layer_dispatch_ns = us(24);
      t.fixed_run_overhead_ns = us(400);
      t.profiler_per_layer_ns = us(520);
      break;
  }
  return t;
}

Executor::Executor(FrameworkKind kind, sim::GpuDevice& device)
    : traits_(traits_for(kind)), name_(framework_name(kind)), device_(&device) {}

Executor::Executor(FrameworkTraits traits, std::string name, sim::GpuDevice& device)
    : traits_(traits), name_(std::move(name)), device_(&device) {}

int Executor::execute_layer(const Layer& layer) {
  const dnn::EwBackend ew = traits_.ew_backend;
  const auto& gpu = device_->spec();
  int launched = 0;

  const auto launch = [&](sim::KernelDesc k) {
    device_->launch_kernel(sim::kDefaultStream, std::move(k));
    ++launched;
  };

  switch (layer.type) {
    case LayerType::kData: {
      sim::MemcpyDesc copy;
      copy.direction = sim::MemcpyDesc::Direction::kHostToDevice;
      copy.bytes = layer.output.bytes();
      device_->enqueue_memcpy(sim::kDefaultStream, copy);
      break;
    }
    case LayerType::kConv2D: {
      dnn::ConvParams p;
      p.batch = layer.input.n;
      p.in_channels = layer.input.c;
      p.in_h = layer.input.h;
      p.in_w = layer.input.w;
      p.out_channels = layer.output.c;
      p.kernel_h = layer.kernel_hw;
      p.kernel_w = layer.kernel_w2 > 0 ? layer.kernel_w2 : layer.kernel_hw;
      p.stride = layer.stride;
      p.pad = layer.pad;
      p.pad_w = layer.pad_w2;
      for (auto& k : dnn::conv_kernels_auto(p, gpu)) launch(std::move(k));
      break;
    }
    case LayerType::kDepthwiseConv2D:
      launch(dnn::depthwise_conv_kernel(layer.input, layer.output, layer.kernel_hw, gpu));
      break;
    case LayerType::kFusedBatchNorm:
      launch(dnn::batchnorm_inference_kernel(layer.output, gpu));
      break;
    case LayerType::kMul:
      launch(dnn::elementwise_kernel(dnn::EwOp::kMul, layer.output, layer.n_inputs, ew));
      break;
    case LayerType::kAdd:
      launch(dnn::elementwise_kernel(dnn::EwOp::kAdd, layer.output, layer.n_inputs, ew));
      break;
    case LayerType::kAddN:
      launch(dnn::elementwise_kernel(dnn::EwOp::kAddN, layer.output, layer.n_inputs, ew));
      break;
    case LayerType::kRelu:
      // TensorFlow lowers Relu onto Eigen's max kernel; MXNet has its own.
      launch(dnn::elementwise_kernel(
          ew == dnn::EwBackend::kEigen ? dnn::EwOp::kMax : dnn::EwOp::kRelu, layer.output, 1,
          ew));
      break;
    case LayerType::kSigmoid:
      launch(dnn::elementwise_kernel(dnn::EwOp::kSigmoid, layer.output, 1, ew));
      break;
    case LayerType::kTanh:
      launch(dnn::elementwise_kernel(dnn::EwOp::kTanh, layer.output, 1, ew));
      break;
    case LayerType::kMatMul:
      launch(dnn::gemm_kernel(layer.output.n, layer.output.c, layer.matmul_k, gpu));
      break;
    case LayerType::kBiasAdd:
      launch(dnn::bias_add_kernel(layer.output, ew));
      break;
    case LayerType::kSoftmax:
      launch(dnn::softmax_kernel(layer.output, gpu));
      break;
    case LayerType::kMaxPool:
      launch(dnn::pooling_kernel(layer.input, layer.kernel_hw, layer.stride, false, gpu));
      break;
    case LayerType::kAvgPool:
      launch(dnn::pooling_kernel(layer.input, layer.kernel_hw, layer.stride, true, gpu));
      break;
    case LayerType::kPad: {
      auto k = dnn::concat_kernel(layer.output, gpu);
      k.name = "tensorflow::PadInputKernel";
      launch(std::move(k));
      break;
    }
    case LayerType::kConcat:
      launch(dnn::concat_kernel(layer.output, gpu));
      break;
    case LayerType::kTranspose:
      launch(dnn::transpose_kernel(layer.input, gpu));
      break;
    case LayerType::kWhere:
      launch(dnn::where_kernel(layer.output.elements(), gpu));
      break;
    case LayerType::kResize:
      launch(dnn::resize_kernel(layer.output, gpu));
      break;
    case LayerType::kReduce:
      launch(dnn::reduce_kernel(layer.input, gpu));
      break;
    case LayerType::kReshape:
      break;  // metadata only, no device work
  }
  return launched;
}

const char* Executor::library_call_name(const Layer& layer, dnn::EwBackend backend) {
  const bool eigen = backend == dnn::EwBackend::kEigen;
  switch (layer.type) {
    case LayerType::kConv2D: return "cudnnConvolutionForward";
    case LayerType::kDepthwiseConv2D: return "tensorflow::LaunchDepthwiseConvOp";
    case LayerType::kFusedBatchNorm: return "cudnnBatchNormalizationForwardInference";
    case LayerType::kMaxPool:
    case LayerType::kAvgPool:
      return "cudnnPoolingForward";
    case LayerType::kSoftmax: return "cudnnSoftmaxForward";
    case LayerType::kMatMul: return "cublasSgemm";
    case LayerType::kMul:
    case LayerType::kAdd:
    case LayerType::kAddN:
    case LayerType::kRelu:
    case LayerType::kSigmoid:
    case LayerType::kTanh:
    case LayerType::kBiasAdd:
      return eigen ? "Eigen::GpuDevice::execute" : "mxnet::op::Kernel::Launch";
    case LayerType::kData: return "cudaMemcpyAsync";
    default: return "tensorflow::LaunchKernelOp";
  }
}

RunResult Executor::run(const Graph& graph, const RunOptions& options) {
  auto& clock = device_->clock();

  RunResult result;
  result.begin = clock.now();

  // Session entry cost (graph lookup, input binding, engine setup).
  clock.advance(traits_.fixed_run_overhead_ns);

  int index = 0;
  for (const auto& layer : graph.layers) {
    if (options.enable_layer_profiling) {
      // Profiler bookkeeping happens around the layer, not inside it, so
      // the recorded layer latency stays accurate (Section III-C).
      clock.advance(traits_.profiler_per_layer_ns);
    }

    const TimePoint layer_begin = clock.now();
    clock.advance(traits_.per_layer_dispatch_ns);
    // The library call's window is the CPU-side span of the launches (the
    // call returns once its kernels are enqueued, before they complete).
    const TimePoint call_begin = clock.now();
    const int launched = execute_layer(layer);
    const TimePoint call_end = clock.now();
    if (options.enable_library_profiling && launched >= 0 &&
        layer.type != LayerType::kReshape) {
      LibraryCallRecord rec;
      rec.name = library_call_name(layer, traits_.ew_backend);
      rec.layer_index = index;
      rec.begin = call_begin;
      rec.end = call_end;
      result.library_records.push_back(std::move(rec));
    }
    // The executor completes a layer when its device work has drained
    // (synchronous per-op execution, as both frameworks default to for
    // inference).
    device_->synchronize_stream(sim::kDefaultStream);
    const TimePoint layer_end = clock.now();

    if (options.enable_layer_profiling) {
      LayerRecord rec;
      rec.index = index;
      rec.name = layer.name;
      rec.type = layer_type_name(layer.type);
      rec.shape = layer.output;
      rec.begin = layer_begin;
      rec.end = layer_end;
      rec.alloc_bytes = layer.alloc_bytes();
      result.layer_records.push_back(std::move(rec));
    }
    ++index;
  }

  device_->synchronize();
  result.end = clock.now();
  return result;
}

}  // namespace xsp::framework
