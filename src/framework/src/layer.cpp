#include "xsp/framework/layer.hpp"

namespace xsp::framework {

const char* layer_type_name(LayerType t) {
  switch (t) {
    case LayerType::kData: return "Data";
    case LayerType::kConv2D: return "Conv2D";
    case LayerType::kDepthwiseConv2D: return "DepthwiseConv2dNative";
    case LayerType::kFusedBatchNorm: return "FusedBatchNorm";
    case LayerType::kMul: return "Mul";
    case LayerType::kAdd: return "Add";
    case LayerType::kAddN: return "AddN";
    case LayerType::kRelu: return "Relu";
    case LayerType::kSigmoid: return "Sigmoid";
    case LayerType::kTanh: return "Tanh";
    case LayerType::kMatMul: return "MatMul";
    case LayerType::kBiasAdd: return "BiasAdd";
    case LayerType::kSoftmax: return "Softmax";
    case LayerType::kMaxPool: return "MaxPool";
    case LayerType::kAvgPool: return "AvgPool";
    case LayerType::kPad: return "Pad";
    case LayerType::kConcat: return "ConcatV2";
    case LayerType::kTranspose: return "Transpose";
    case LayerType::kWhere: return "Where";
    case LayerType::kResize: return "ResizeBilinear";
    case LayerType::kReduce: return "Reduce";
    case LayerType::kReshape: return "Reshape";
  }
  return "?";
}

}  // namespace xsp::framework
