// Layer and Graph: the framework-level representation of a model.
//
// A Graph is the *runtime* layer sequence the framework executes — which,
// as the paper stresses, can differ from the statically defined model
// graph ("a framework may perform model optimization at runtime",
// Section III-D2). For instance the TensorFlow personality lowers
// Conv -> BN -> Relu blocks into the Conv2D -> Mul -> Add -> Relu layer
// sequence observed in the paper's Figure 4.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "xsp/dnn/tensor.hpp"

namespace xsp::framework {

/// Runtime layer operator types (TensorFlow naming where applicable).
enum class LayerType : std::uint8_t {
  kData,           ///< input placeholder + host->device transfer
  kConv2D,
  kDepthwiseConv2D,
  kFusedBatchNorm,  ///< fused inference BN (MXNet keeps BN fused)
  kMul,             ///< BN scale, TF decomposition
  kAdd,             ///< BN shift / residual add
  kAddN,
  kRelu,
  kSigmoid,
  kTanh,
  kMatMul,
  kBiasAdd,
  kSoftmax,
  kMaxPool,
  kAvgPool,
  kPad,
  kConcat,
  kTranspose,
  kWhere,
  kResize,
  kReduce,
  kReshape,  ///< metadata-only
};

/// TensorFlow-style operator name ("Conv2D", "DepthwiseConv2dNative", ...).
const char* layer_type_name(LayerType t);

/// One runtime layer. Shape and parameter fields carry exactly what the
/// kernel builders need; unused fields stay at their defaults.
struct Layer {
  LayerType type = LayerType::kReshape;
  std::string name;
  dnn::Shape4 input;
  dnn::Shape4 output;
  /// Convolution / pooling geometry. `kernel_w2`/`pad_w2` of -1 mean a
  /// square kernel / symmetric padding; factorized 1x7/7x1 convolutions
  /// set them explicitly.
  std::int64_t kernel_hw = 1;
  std::int64_t kernel_w2 = -1;
  std::int64_t stride = 1;
  std::int64_t pad = 0;
  std::int64_t pad_w2 = -1;
  /// Contraction depth for MatMul (output.c = N dimension, matmul_k = K).
  std::int64_t matmul_k = 0;
  /// Dense inputs for AddN / Concat.
  int n_inputs = 1;
  /// Parameter (weight) bytes owned by this layer.
  double param_bytes = 0;

  /// Memory the framework allocates to execute this layer (the output
  /// tensor; frameworks do not run element-wise ops in place, which is why
  /// Relu shows up prominently in the paper's Figure 4c).
  [[nodiscard]] double alloc_bytes() const noexcept { return output.bytes(); }
};

/// The runtime layer sequence of one model at one batch size.
struct Graph {
  std::string model_name;
  std::vector<Layer> layers;  ///< execution order

  /// Sum of parameter bytes — the "frozen graph size" of Table VIII.
  [[nodiscard]] double graph_size_bytes() const noexcept {
    double total = 0;
    for (const auto& l : layers) total += l.param_bytes;
    return total;
  }

  [[nodiscard]] std::int64_t batch() const noexcept {
    return layers.empty() ? 0 : layers.front().input.n;
  }
};

}  // namespace xsp::framework
