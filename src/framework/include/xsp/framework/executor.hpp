// Graph executor with two framework personalities.
//
// The paper's framework comparison (Section IV-B) attributes the measured
// TensorFlow/MXNet differences to two mechanisms, both modelled here:
//   * element-wise kernel provider: TF dispatches to Eigen kernels with
//     excess DRAM traffic; MXNet's kernels are leaner ("MXNet MobileNets
//     has fewer memory accesses and therefore a higher achieved GPU
//     occupancy"),
//   * per-inference engine overhead: "MXNet incurs a fixed overhead for
//     model execution which is more pronounced for small batch sizes"
//     (MXNet ResNet_v1_50 shows 4.44 ms non-GPU latency at batch 1 vs
//     2.18 ms for TensorFlow).
//
// The executor also hosts the framework profiler (the paper's layer-level
// profiling source): when enabled via RunOptions — the analogue of
// TensorFlow's RunOptions.TraceLevel / MXNet's MXSetProfilerState — it
// emits one LayerRecord per executed layer and charges the documented
// per-layer profiling overhead.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "xsp/common/string_table.hpp"
#include "xsp/common/time.hpp"
#include "xsp/dnn/ops.hpp"
#include "xsp/framework/layer.hpp"
#include "xsp/sim/device.hpp"

namespace xsp::framework {

enum class FrameworkKind : std::uint8_t {
  kTFlow,   ///< TensorFlow personality
  kMXLite,  ///< MXNet personality
};

const char* framework_name(FrameworkKind k);

/// Tunable per-framework behaviour. Defaults are calibrated against the
/// paper's Section IV-B observations.
struct FrameworkTraits {
  dnn::EwBackend ew_backend = dnn::EwBackend::kEigen;
  /// True lowers BatchNorm into Mul + Add runtime layers (TensorFlow).
  bool decompose_batchnorm = true;
  /// CPU cost of dispatching one layer (op lookup, tensor bookkeeping).
  Ns per_layer_dispatch_ns = us(12);
  /// Fixed per-inference engine cost (session setup, executor warmdown).
  Ns fixed_run_overhead_ns = us(200);
  /// Extra CPU cost per layer when the framework profiler is on — this is
  /// the overhead leveled experimentation subtracts out (Figure 2 shows
  /// 157 ms across ResNet50's 234 layers, ~0.67 ms per layer).
  Ns profiler_per_layer_ns = us(660);
};

FrameworkTraits traits_for(FrameworkKind kind);

/// One record emitted by the framework profiler — the layer-level data XSP
/// converts into spans (index, name, type, shape, latency, memory). Names
/// and types are interned so per-layer record emission allocates nothing
/// after the first run over a graph.
struct LayerRecord {
  int index = 0;
  common::StrId name;
  common::StrId type;
  dnn::Shape4 shape;
  TimePoint begin = 0;
  TimePoint end = 0;
  double alloc_bytes = 0;

  [[nodiscard]] Ns latency() const noexcept { return end - begin; }
};

struct RunOptions {
  /// Enable the framework profiler (layer-level records + its overhead).
  bool enable_layer_profiling = false;
  /// Record the ML-library calls (cuDNN/cuBLAS/backend launches) each layer
  /// makes — the optional profiling level the paper's Section III-E places
  /// between the layer and GPU-kernel levels.
  bool enable_library_profiling = false;
};

/// One ML-library API call (cudnnConvolutionForward, cublasSgemm, ...)
/// with its CPU-side window.
struct LibraryCallRecord {
  common::StrId name;
  int layer_index = 0;
  TimePoint begin = 0;
  TimePoint end = 0;
};

struct RunResult {
  TimePoint begin = 0;  ///< model prediction start (TF_SessionRun entry)
  TimePoint end = 0;    ///< model prediction end
  std::vector<LayerRecord> layer_records;  ///< empty unless profiling was on
  std::vector<LibraryCallRecord> library_records;  ///< ditto (library level)

  [[nodiscard]] Ns latency() const noexcept { return end - begin; }
};

/// Executes Graphs on a simulated GPU with a framework personality.
class Executor {
 public:
  Executor(FrameworkKind kind, sim::GpuDevice& device);
  Executor(FrameworkTraits traits, std::string name, sim::GpuDevice& device);

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] const FrameworkTraits& traits() const noexcept { return traits_; }

  /// Run one inference (the model-prediction step only; input pre- and
  /// output post-processing live in the profiling harness above).
  RunResult run(const Graph& graph, const RunOptions& options = {});

 private:
  /// Launch the kernels of one layer; returns the number launched.
  int execute_layer(const Layer& layer);

  /// The library entry point a layer's device work goes through.
  static const char* library_call_name(const Layer& layer, dnn::EwBackend backend);

  FrameworkTraits traits_;
  std::string name_;
  sim::GpuDevice* device_;
};

}  // namespace xsp::framework
