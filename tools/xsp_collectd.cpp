// xsp_collectd — the cross-process trace collector daemon: accepts XSP
// binary wire streams (v1..v3) from remote producers (trace::RemoteSink),
// re-interns and re-ids every span into one fleet-wide
// ShardedTraceServer, and fans the merged stream out to the same sinks an
// in-process session would use.
//
//   xsp_collectd --listen unix:/tmp/xsp.sock --out fleet.xspb
//   xsp_collectd --listen tcp://127.0.0.1:7450 --json fleet.json --online
//   xsp_collectd --listen tcp://127.0.0.1:7450 --metrics tcp://127.0.0.1:9464
//
// Options:
//   --listen URI         endpoint to accept producers on (required):
//                        unix:/path or tcp://host:port (port 0 = pick one)
//   --out FILE           re-export the merged trace as binary wire
//                        (BinaryWriter, kConsume drain — bounded memory)
//   --json FILE          also stream span JSON with metadata (observer)
//   --online             aggregate with OnlineAnalyzer; summary at exit
//   --metrics URI        serve GET /metrics (Prometheus text) + /healthz
//                        on this endpoint from the collector's poll loop
//   --stats-json         emit one JSON stats object per interval on stdout
//   --stats-interval-ms N  cadence of --stats-json objects (default 1000)
//   --shards N           trace-server shards (default 1; 0 = per-core)
//   --strtab-budget N    byte budget for the collector's global string
//                        table (0 = unbounded): past it, re-interns from
//                        producer streams resolve to the "<interned-cap>"
//                        sentinel instead of growing the table, keeping a
//                        long-lived daemon's memory bounded against
//                        high-cardinality producers
//   --drain-timeout-ms N grace for connected producers after SIGTERM
//                        (default 5000)
//   --max-frame-bytes N  per-connection frame bound (default 64 MiB)
//
// Lifecycle: prints "listening on <uri>" once ready (after bind, so a UDS
// path existing or this line appearing both mean "connect now") — and
// "metrics on <uri>" when --metrics is set — then serves until
// SIGTERM/SIGINT. Shutdown drains connected producers (bounded by
// --drain-timeout-ms), finishes the export sinks, and prints
// machine-greppable ingest stats on *stderr* (stdout belongs to trace
// output and --stats-json objects, which scripts filter with /^{/):
//
//   stats: connections_accepted=4 closed=4 errored=0
//   stats: spans_ingested=4000 strings_reinterned=52 bytes_received=...
//   stats: footers_seen=4 producer_dropped_spans=0 producer_reconnects=0
//
// The CI multi-process job asserts exact spans_ingested against what the
// producer fleet reported publishing, and scrapes /metrics mid-run to
// check the same invariant live.
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "xsp/analysis/online.hpp"
#include "xsp/metrics/registry.hpp"
#include "xsp/net/collector.hpp"
#include "xsp/net/endpoint.hpp"
#include "xsp/trace/export.hpp"
#include "xsp/trace/sharded_trace_server.hpp"
#include "xsp/trace/wire.hpp"

namespace {

using namespace xsp;

struct Options {
  std::string listen;
  std::string out;
  std::string json;
  std::string metrics;
  bool online = false;
  bool stats_json = false;
  int stats_interval_ms = 1000;
  std::size_t shards = 1;
  std::size_t strtab_budget = 0;
  int drain_timeout_ms = 5000;
  std::size_t max_frame_bytes = trace::wire::kMaxFramePayload;
};

void print_usage() {
  std::fprintf(stderr,
               "usage: xsp_collectd --listen URI [--out FILE.xspb] [--json FILE.json]\n"
               "                    [--online] [--metrics URI] [--stats-json]\n"
               "                    [--stats-interval-ms N] [--shards N] [--strtab-budget N]\n"
               "                    [--drain-timeout-ms N] [--max-frame-bytes N]\n");
}

bool parse_int(const char* s, std::int64_t& out) {
  char* end = nullptr;
  errno = 0;
  const long long v = std::strtoll(s, &end, 10);
  if (end == s || *end != '\0' || errno == ERANGE) return false;
  out = v;
  return true;
}

bool parse_args(int argc, char** argv, Options& opts) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "xsp_collectd: %s needs a value\n", flag);
        return nullptr;
      }
      return argv[++i];
    };
    std::int64_t n = 0;
    if (arg == "--listen") {
      const char* v = next("--listen");
      if (!v) return false;
      opts.listen = v;
    } else if (arg == "--out") {
      const char* v = next("--out");
      if (!v) return false;
      opts.out = v;
    } else if (arg == "--json") {
      const char* v = next("--json");
      if (!v) return false;
      opts.json = v;
    } else if (arg == "--online") {
      opts.online = true;
    } else if (arg == "--metrics") {
      const char* v = next("--metrics");
      if (!v) return false;
      opts.metrics = v;
    } else if (arg == "--stats-json") {
      opts.stats_json = true;
    } else if (arg == "--stats-interval-ms") {
      const char* v = next("--stats-interval-ms");
      if (!v || !parse_int(v, n) || n <= 0) return false;
      opts.stats_interval_ms = static_cast<int>(n);
    } else if (arg == "--shards") {
      const char* v = next("--shards");
      if (!v || !parse_int(v, n) || n < 0) return false;
      opts.shards = static_cast<std::size_t>(n);
    } else if (arg == "--strtab-budget") {
      const char* v = next("--strtab-budget");
      if (!v || !parse_int(v, n) || n < 0) return false;
      opts.strtab_budget = static_cast<std::size_t>(n);
    } else if (arg == "--drain-timeout-ms") {
      const char* v = next("--drain-timeout-ms");
      if (!v || !parse_int(v, n) || n < 0) return false;
      opts.drain_timeout_ms = static_cast<int>(n);
    } else if (arg == "--max-frame-bytes") {
      const char* v = next("--max-frame-bytes");
      if (!v || !parse_int(v, n) || n <= 0) return false;
      opts.max_frame_bytes = static_cast<std::size_t>(n);
    } else {
      std::fprintf(stderr, "xsp_collectd: unknown option '%s'\n", arg.c_str());
      return false;
    }
  }
  if (opts.listen.empty()) {
    std::fprintf(stderr, "xsp_collectd: --listen is required\n");
    return false;
  }
  return true;
}

// The signal handler may only do async-signal-safe work; stop() is a
// relaxed atomic store, nothing more.
net::CollectorService* g_service = nullptr;

void handle_stop_signal(int) {
  if (g_service != nullptr) g_service->stop();
}

/// One flat JSON object with the full stats snapshot, emitted as a single
/// line so scripts can stream-parse stdout (every --stats-json line starts
/// with '{'; everything else on stdout starts with a word).
void print_stats_json(const net::CollectorService& service) {
  const net::CollectorStats s = service.stats();
  std::printf(
      "{\"connections_accepted\":%llu,\"connections_closed\":%llu,"
      "\"connections_errored\":%llu,\"open_connections\":%llu,"
      "\"bytes_received\":%llu,\"spans_ingested\":%llu,"
      "\"strings_reinterned\":%llu,\"frames_parsed\":%llu,"
      "\"footers_seen\":%llu,\"heartbeats_seen\":%llu,"
      "\"http_requests\":%llu,\"http_errors\":%llu,"
      "\"producer_dropped_spans\":%llu,\"producer_reconnects\":%llu}\n",
      static_cast<unsigned long long>(s.connections_accepted),
      static_cast<unsigned long long>(s.connections_closed),
      static_cast<unsigned long long>(s.connections_errored),
      static_cast<unsigned long long>(service.open_connections()),
      static_cast<unsigned long long>(s.bytes_received),
      static_cast<unsigned long long>(s.spans_ingested),
      static_cast<unsigned long long>(s.strings_reinterned),
      static_cast<unsigned long long>(s.frames_parsed),
      static_cast<unsigned long long>(s.footers_seen),
      static_cast<unsigned long long>(s.heartbeats_seen),
      static_cast<unsigned long long>(s.http_requests),
      static_cast<unsigned long long>(s.http_errors),
      static_cast<unsigned long long>(s.producer_dropped_spans),
      static_cast<unsigned long long>(s.producer_reconnects));
  std::fflush(stdout);
}

int run(const Options& opts) {
  const net::Endpoint ep = net::Endpoint::parse(opts.listen);

  // The registry collects the sink fleet's own health series; the service
  // appends them to /metrics after its ingest counters. Declared before
  // the service so it outlives every scrape.
  metrics::Registry registry;
  // Bounded interning: arm the budget before the first producer stream
  // re-interns anything. A long-lived daemon fed by high-cardinality
  // producers plateaus here instead of growing without bound.
  if (opts.strtab_budget > 0) {
    common::StringTable::global().set_budget_bytes(opts.strtab_budget);
  }
  trace::ShardedTraceServer server(opts.shards);
  net::CollectorOptions copts;
  copts.max_frame_payload = opts.max_frame_bytes;
  copts.drain_timeout_ms = opts.drain_timeout_ms;
  copts.metrics_endpoint = opts.metrics;
  copts.registry = &registry;
  net::CollectorService service(ep, server, copts);
  server.bind_metrics(registry);

  // Export fan-out on the server's drain seam — exactly the sinks an
  // in-process session uses, now fed by the whole fleet.
  std::ofstream out_stream;
  std::unique_ptr<trace::BinaryWriter> writer;
  std::vector<trace::SubscriberId> subscriptions;
  if (!opts.out.empty()) {
    out_stream.open(opts.out, std::ios::binary | std::ios::trunc);
    if (!out_stream) {
      std::fprintf(stderr, "xsp_collectd: cannot open '%s'\n", opts.out.c_str());
      return 1;
    }
    writer = std::make_unique<trace::BinaryWriter>(out_stream);
    // kConsume: batches leave the server as they drain, so daemon memory
    // stays bounded however long the fleet streams.
    subscriptions.push_back(server.add_drain_subscriber(
        [&w = *writer](const trace::SpanBatches& batches) { w.write_batches(batches); },
        trace::DrainHandoff::kConsume));
  }
  std::ofstream json_stream;
  std::unique_ptr<trace::StreamingExporter> exporter;
  if (!opts.json.empty()) {
    json_stream.open(opts.json, std::ios::trunc);
    if (!json_stream) {
      std::fprintf(stderr, "xsp_collectd: cannot open '%s'\n", opts.json.c_str());
      return 1;
    }
    exporter = std::make_unique<trace::StreamingExporter>(
        trace::ExportFormat::kSpanJson, json_stream, /*with_metadata=*/true);
    subscriptions.push_back(server.add_drain_subscriber(
        [&e = *exporter](const trace::SpanBatches& batches) { e.write_batches(batches); },
        trace::DrainHandoff::kObserve));
  }
  std::unique_ptr<analysis::OnlineAnalyzer> analyzer;
  if (opts.online) {
    analyzer = std::make_unique<analysis::OnlineAnalyzer>();
    subscriptions.push_back(server.add_drain_subscriber(
        analyzer->shard_subscriber(), trace::DrainHandoff::kObserve));
  }

  g_service = &service;
  std::signal(SIGTERM, handle_stop_signal);
  std::signal(SIGINT, handle_stop_signal);
  // A producer vanishing between poll and write must not kill the daemon.
  std::signal(SIGPIPE, SIG_IGN);

  std::printf("xsp_collectd: listening on %s\n", service.endpoint().uri().c_str());
  if (const net::Endpoint* mep = service.metrics_endpoint())
    std::printf("xsp_collectd: metrics on %s\n", mep->uri().c_str());
  std::fflush(stdout);

  // --stats-json: a small ticker thread prints one JSON snapshot per
  // interval (stats() is a mutex-guarded copy, safe off the run thread).
  std::thread stats_ticker;
  std::mutex ticker_mu;
  std::condition_variable ticker_cv;
  bool ticker_stop = false;
  if (opts.stats_json) {
    stats_ticker = std::thread([&] {
      std::unique_lock lk(ticker_mu);
      while (!ticker_cv.wait_for(lk,
                                 std::chrono::milliseconds(opts.stats_interval_ms),
                                 [&] { return ticker_stop; })) {
        print_stats_json(service);
      }
    });
  }

  service.run();
  g_service = nullptr;

  if (stats_ticker.joinable()) {
    {
      std::lock_guard lk(ticker_mu);
      ticker_stop = true;
    }
    ticker_cv.notify_all();
    stats_ticker.join();
    // Final snapshot after the drain so scripts always see the end state.
    print_stats_json(service);
  }

  // Everything accepted is published; push it through the drain seam and
  // finalize the sinks with fleet-wide telemetry.
  server.flush();
  trace::TraceMeta meta;
  meta.dropped_annotations = server.dropped_annotation_count();
  meta.shard_count = server.shard_count();
  const auto& table = common::StringTable::global();
  meta.interned_strings = table.size();
  meta.interned_bytes = table.approx_bytes();
  meta.strtab_budget_bytes = table.budget_bytes();
  meta.rejected_interns = table.rejected_interns();
  meta.live_slots = server.live_slot_count();
  meta.retired_slots = server.retired_slot_count();
  meta.slot_bytes = server.approx_slot_bytes();
  const net::CollectorStats stats = service.stats();
  meta.remote_dropped_spans = stats.producer_dropped_spans;
  meta.remote_reconnects = stats.producer_reconnects;

  for (const trace::SubscriberId id : subscriptions)
    server.remove_drain_subscriber(id);
  if (writer) {
    writer->set_meta(meta);
    writer->finish();
    out_stream.flush();
  }
  if (exporter) {
    exporter->set_meta(meta);
    exporter->finish();
    json_stream.flush();
  }

  // stats: lines live on stderr so they can never interleave with trace
  // output (or --stats-json objects) on stdout.
  std::fprintf(stderr, "stats: connections_accepted=%llu closed=%llu errored=%llu\n",
               static_cast<unsigned long long>(stats.connections_accepted),
               static_cast<unsigned long long>(stats.connections_closed),
               static_cast<unsigned long long>(stats.connections_errored));
  std::fprintf(stderr,
               "stats: spans_ingested=%llu strings_reinterned=%llu bytes_received=%llu\n",
               static_cast<unsigned long long>(stats.spans_ingested),
               static_cast<unsigned long long>(stats.strings_reinterned),
               static_cast<unsigned long long>(stats.bytes_received));
  std::fprintf(stderr, "stats: strtab_bytes=%llu strtab_budget=%llu rejected_interns=%llu\n",
               static_cast<unsigned long long>(meta.interned_bytes),
               static_cast<unsigned long long>(meta.strtab_budget_bytes),
               static_cast<unsigned long long>(meta.rejected_interns));
  std::fprintf(stderr,
               "stats: footers_seen=%llu producer_dropped_spans=%llu producer_reconnects=%llu\n",
               static_cast<unsigned long long>(stats.footers_seen),
               static_cast<unsigned long long>(stats.producer_dropped_spans),
               static_cast<unsigned long long>(stats.producer_reconnects));
  std::fflush(stderr);
  if (analyzer) {
    const analysis::OnlineSnapshot snap = analyzer->snapshot();
    std::printf("online: spans=%llu batches=%llu layer_spans=%llu kernel_spans=%llu\n",
                static_cast<unsigned long long>(snap.spans),
                static_cast<unsigned long long>(snap.batches),
                static_cast<unsigned long long>(snap.layer_spans),
                static_cast<unsigned long long>(snap.kernel_spans));
  }
  std::fflush(stdout);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options opts;
  if (!parse_args(argc, argv, opts)) {
    print_usage();
    return 2;
  }
  try {
    return run(opts);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "xsp_collectd: %s\n", e.what());
    return 1;
  }
}
