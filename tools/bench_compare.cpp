// bench_compare: regression gate over google-benchmark JSON dumps.
//
// Usage: bench_compare <baseline.json> <current.json>
//                      [--threshold 0.30] [--ignore <substring>]...
//        bench_compare --pair <baseline.json> <current.json>
//                      [--pair <baseline2.json> <current2.json>]...
//                      [--threshold 0.30] [--ignore <substring>]...
//
// Compares `items_per_second` of matching benchmark cases between a
// recorded baseline (bench/results/BENCH_*.json) and a fresh run, and
// exits non-zero if any case regressed by more than the threshold
// (default 30% — see bench/README.md for how thresholds were chosen).
// --pair may repeat, gating several baseline/current file pairs in one
// invocation with one combined verdict — how CI gates every benchmark
// suite in a single step. --ignore excludes cases whose name contains
// the substring from gating (they are still printed): CI uses it for the
// contended cases, whose documented cross-machine variance exceeds any
// useful threshold.
//
// Parsing is deliberately specialized to google-benchmark's output: each
// object in the "benchmarks" array lists "name" before its metrics, so a
// linear scan pairing each "name" with the next "items_per_second" is
// exact for this format — no JSON library needed. When aggregate entries
// are present (--benchmark_report_aggregates_only), only the `_median`
// rows are compared (medians are robust to scheduler noise on shared CI
// runners); otherwise the raw rows are compared by full name. Cases
// present in only one file (new benchmarks, retired benchmarks) are
// reported and skipped.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

namespace {

std::optional<std::string> read_file(const char* path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

/// Extract the JSON string starting at the opening quote `pos` points at.
std::string parse_string(const std::string& text, std::size_t pos) {
  std::string out;
  for (std::size_t i = pos + 1; i < text.size(); ++i) {
    const char c = text[i];
    if (c == '\\' && i + 1 < text.size()) {
      out.push_back(text[++i]);
    } else if (c == '"') {
      break;
    } else {
      out.push_back(c);
    }
  }
  return out;
}

/// name -> items_per_second for every benchmark entry that reports one.
std::map<std::string, double> parse_rates(const std::string& text) {
  std::map<std::string, double> rates;
  std::string current_name;
  std::size_t pos = 0;
  while (pos < text.size()) {
    const std::size_t name_at = text.find("\"name\"", pos);
    const std::size_t rate_at = text.find("\"items_per_second\"", pos);
    if (name_at == std::string::npos && rate_at == std::string::npos) break;
    if (name_at < rate_at) {
      // The value's opening quote is the first quote after the colon.
      const std::size_t colon = text.find(':', name_at);
      if (colon == std::string::npos) break;
      const std::size_t q = text.find('"', colon + 1);
      if (q == std::string::npos) break;
      current_name = parse_string(text, q);
      pos = q + current_name.size() + 2;
    } else {
      const std::size_t colon = text.find(':', rate_at);
      if (colon == std::string::npos) break;
      if (!current_name.empty()) {
        rates[current_name] = std::strtod(text.c_str() + colon + 1, nullptr);
        current_name.clear();  // one rate per name
      }
      pos = colon + 1;
    }
  }
  return rates;
}

constexpr const char* kMedianSuffix = "_median";

/// Keep only `_median` aggregates (stripping the suffix) when any exist;
/// otherwise return all entries unchanged.
std::map<std::string, double> prefer_medians(const std::map<std::string, double>& rates) {
  std::map<std::string, double> medians;
  for (const auto& [name, rate] : rates) {
    const std::size_t suffix_len = std::strlen(kMedianSuffix);
    if (name.size() > suffix_len &&
        name.compare(name.size() - suffix_len, suffix_len, kMedianSuffix) == 0) {
      medians.emplace(name.substr(0, name.size() - suffix_len), rate);
    }
  }
  return medians.empty() ? rates : medians;
}

struct PairResult {
  int compared = 0;
  int failed = 0;
};

/// Gate one baseline/current file pair, printing the per-case table.
/// Returns std::nullopt on a hard error (unreadable/unparseable file or
/// no common cases) — the caller exits 2.
template <typename IgnoredFn>
std::optional<PairResult> compare_pair(const char* baseline_path, const char* current_path,
                                       double threshold, const IgnoredFn& ignored) {
  const auto baseline_text = read_file(baseline_path);
  const auto current_text = read_file(current_path);
  if (!baseline_text || !current_text) {
    std::fprintf(stderr, "bench_compare: cannot read %s\n",
                 !baseline_text ? baseline_path : current_path);
    return std::nullopt;
  }

  const auto baseline = prefer_medians(parse_rates(*baseline_text));
  const auto current = prefer_medians(parse_rates(*current_text));
  if (baseline.empty()) {
    std::fprintf(stderr, "bench_compare: no items_per_second entries in %s\n", baseline_path);
    return std::nullopt;
  }

  std::printf("%s vs %s\n", baseline_path, current_path);
  std::printf("%-44s %14s %14s %8s\n", "case", "baseline/s", "current/s", "ratio");
  PairResult result;
  for (const auto& [name, base_rate] : baseline) {
    const auto it = current.find(name);
    if (it == current.end() || base_rate <= 0) {
      std::printf("%-44s %14.3g %14s %8s\n", name.c_str(), base_rate, "-", "skip");
      continue;
    }
    const double ratio = it->second / base_rate;
    if (ignored(name)) {
      std::printf("%-44s %14.3g %14.3g %7.2fx  (not gated)\n", name.c_str(), base_rate,
                  it->second, ratio);
      continue;
    }
    ++result.compared;
    const bool regressed = ratio < 1.0 - threshold;
    result.failed += regressed ? 1 : 0;
    std::printf("%-44s %14.3g %14.3g %7.2fx%s\n", name.c_str(), base_rate, it->second, ratio,
                regressed ? "  << REGRESSION" : "");
  }
  for (const auto& [name, rate] : current) {
    if (baseline.find(name) == baseline.end()) {
      std::printf("%-44s %14s %14.3g %8s\n", name.c_str(), "-", rate, "new");
    }
  }

  if (result.compared == 0) {
    std::fprintf(stderr, "bench_compare: no common cases between %s and %s\n", baseline_path,
                 current_path);
    return std::nullopt;
  }
  if (result.failed > 0) {
    std::fprintf(stderr, "bench_compare: %d case(s) regressed more than %.0f%% vs %s\n",
                 result.failed, threshold * 100, baseline_path);
  }
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  double threshold = 0.30;
  const char* baseline_path = nullptr;
  const char* current_path = nullptr;
  std::vector<std::pair<const char*, const char*>> pairs;
  std::vector<std::string> ignore;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--threshold") == 0 && i + 1 < argc) {
      threshold = std::strtod(argv[++i], nullptr);
    } else if (std::strcmp(argv[i], "--ignore") == 0 && i + 1 < argc) {
      ignore.emplace_back(argv[++i]);
    } else if (std::strcmp(argv[i], "--pair") == 0 && i + 2 < argc) {
      const char* base = argv[++i];
      const char* cur = argv[++i];
      pairs.emplace_back(base, cur);
    } else if (baseline_path == nullptr) {
      baseline_path = argv[i];
    } else if (current_path == nullptr) {
      current_path = argv[i];
    }
  }
  // Legacy positional form is exactly one --pair.
  if (baseline_path != nullptr && current_path != nullptr) {
    pairs.emplace_back(baseline_path, current_path);
  }
  if (pairs.empty()) {
    std::fprintf(stderr,
                 "usage: bench_compare <baseline.json> <current.json> [--threshold 0.30] "
                 "[--ignore <substring>]...\n"
                 "       bench_compare --pair <baseline.json> <current.json> "
                 "[--pair <b2.json> <c2.json>]... [options]\n");
    return 2;
  }
  const auto ignored = [&ignore](const std::string& name) {
    for (const auto& needle : ignore) {
      if (name.find(needle) != std::string::npos) return true;
    }
    return false;
  };

  int compared = 0;
  int failed = 0;
  for (std::size_t i = 0; i < pairs.size(); ++i) {
    if (i > 0) std::printf("\n");
    const auto result = compare_pair(pairs[i].first, pairs[i].second, threshold, ignored);
    if (!result) return 2;
    compared += result->compared;
    failed += result->failed;
  }
  if (failed > 0) {
    std::fprintf(stderr, "bench_compare: %d case(s) regressed more than %.0f%% overall\n",
                 failed, threshold * 100);
    return 1;
  }
  std::printf("bench_compare: %d case(s) across %zu pair(s) within %.0f%% of baseline\n",
              compared, pairs.size(), threshold * 100);
  return 0;
}
