// xsp_top — a top(1)-style live dashboard over a running profiling
// session, rendered from OnlineAnalyzer snapshots.
//
// A worker thread profiles a model repeatedly with
// ProfileOptions::live_stats enabled; the main thread periodically takes
// Session::live_snapshot() — thread-safe, mid-run — and renders a text
// dashboard: total/windowed span rates, GPU occupancy, latency
// percentiles, the hottest kernels and layer types, per-shard loads with
// an imbalance factor, StringTable growth, and producer-slot health
// (live/retired/pooled slots + resident bytes — the thread-exit
// reclamation signal). A final dashboard is
// always printed after the last run, so even `--runs 1 --interval-ms 0`
// produces a complete picture (what the CI smoke asserts on).
//
//   xsp_top --runs 5 --interval-ms 100
//   xsp_top --model MLPerf_MobileNet_v1 --batch 8 --shards 4 --level mlg
//
// Options:
//   --model NAME      model-zoo model (default MLPerf_ResNet50_v1.5)
//   --system NAME     simulated system (default Tesla_V100)
//   --batch N         batch size (default 1)
//   --level m|ml|mlg  profiling levels (default mlg)
//   --shards N        trace-server shards (default 2; 0 = per-core default)
//   --runs N          profiled evaluations to drive (default 5)
//   --interval-ms N   dashboard refresh period, wall-clock ms (default 200;
//                     0 = final dashboard only)
//   --window-ms N     sliding-stats window, simulated ms (default 100)
//   --stream FILE     also stream each run's spans to FILE as they drain
//                     (the dashboard gains an "export:" cost line fed by
//                     RunTrace::streamed_spans/streamed_bytes)
//   --stream-format chrome|spans|binary  document shape for --stream
//                     (default binary — the low-overhead wire format)
//   --sample R        head-sampling rate in (0, 1]: admit this fraction
//                     of spans at publish (default 1 = off); the
//                     "sampling:" line shows kept/dropped and the
//                     analyzer's rescaled span estimate
//   --tail-keep-us N  force-admit spans >= N us regardless of the
//                     sampling draw (latency outliers survive)
//   --top-k N         bound the live kernel table to N SpaceSaving rows
//                     (default 0 = exact)
//   --alert-p99-us N  register an edge-triggered alert that prints when
//                     the kernel p99 crosses N us (0 = off)
//
// Daemon mode — the fleet view, no local profiling at all:
//
//   xsp_top --daemon tcp://127.0.0.1:9464 --runs 5 --interval-ms 1000
//
//   --daemon URI      scrape GET /metrics on a running xsp_collectd's
//                     metrics endpoint and render the collector's ingest
//                     counters plus a per-producer health table (spans
//                     published/sent/dropped, outbox depth, heartbeat age,
//                     staleness) from the wire v3 heartbeat series.
//                     --runs scrapes, --interval-ms apart.
#include <atomic>
#include <cerrno>
#include <chrono>
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <exception>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "xsp/analysis/online.hpp"
#include "xsp/metrics/exposition.hpp"
#include "xsp/models/registry.hpp"
#include "xsp/net/endpoint.hpp"
#include "xsp/net/socket.hpp"
#include "xsp/profile/session.hpp"
#include "xsp/report/table.hpp"
#include "xsp/sim/gpu_spec.hpp"

namespace {

using namespace xsp;

struct Options {
  std::string model = "MLPerf_ResNet50_v1.5";
  std::string system = "Tesla_V100";
  std::int64_t batch = 1;
  std::string level = "mlg";
  std::size_t shards = 2;
  std::int64_t runs = 5;
  std::int64_t interval_ms = 200;
  std::int64_t window_ms = 100;
  std::string stream;
  std::string stream_format = "binary";
  double sample = 1.0;
  std::int64_t tail_keep_us = 0;
  std::int64_t top_k = 0;
  std::int64_t alert_p99_us = 0;
  std::string daemon;
};

void print_usage() {
  std::fprintf(stderr,
               "usage: xsp_top [--model NAME] [--system NAME] [--batch N] [--level m|ml|mlg]\n"
               "               [--shards N] [--runs N] [--interval-ms N] [--window-ms N]\n"
               "               [--stream FILE] [--stream-format chrome|spans|binary]\n"
               "               [--sample R] [--tail-keep-us N] [--top-k N] [--alert-p99-us N]\n"
               "       xsp_top --daemon URI [--runs N] [--interval-ms N]\n");
}

bool parse_int(const char* s, std::int64_t& out) {
  char* end = nullptr;
  errno = 0;
  const long long v = std::strtoll(s, &end, 10);
  if (end == s || *end != '\0' || errno == ERANGE) return false;
  out = v;
  return true;
}

bool parse_double(const char* s, double& out) {
  char* end = nullptr;
  errno = 0;
  const double v = std::strtod(s, &end);
  if (end == s || *end != '\0' || errno == ERANGE) return false;
  out = v;
  return true;
}

bool parse_args(int argc, char** argv, Options& opts) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
    const char* v = nullptr;
    std::int64_t n = 0;
    if (arg == "--model" && (v = next()) != nullptr) {
      opts.model = v;
    } else if (arg == "--system" && (v = next()) != nullptr) {
      opts.system = v;
    } else if (arg == "--batch" && (v = next()) != nullptr && parse_int(v, n) && n > 0) {
      opts.batch = n;
    } else if (arg == "--level" && (v = next()) != nullptr) {
      opts.level = v;
    } else if (arg == "--shards" && (v = next()) != nullptr && parse_int(v, n) && n >= 0) {
      opts.shards = static_cast<std::size_t>(n);
    } else if (arg == "--runs" && (v = next()) != nullptr && parse_int(v, n) && n > 0) {
      opts.runs = n;
    } else if (arg == "--interval-ms" && (v = next()) != nullptr && parse_int(v, n) && n >= 0) {
      opts.interval_ms = n;
    } else if (arg == "--window-ms" && (v = next()) != nullptr && parse_int(v, n) && n > 0) {
      opts.window_ms = n;
    } else if (arg == "--stream" && (v = next()) != nullptr) {
      opts.stream = v;
    } else if (arg == "--stream-format" && (v = next()) != nullptr) {
      opts.stream_format = v;
    } else if (arg == "--sample" && (v = next()) != nullptr && parse_double(v, opts.sample) &&
               opts.sample > 0 && opts.sample <= 1.0) {
      // validated inline
    } else if (arg == "--tail-keep-us" && (v = next()) != nullptr && parse_int(v, n) && n >= 0) {
      opts.tail_keep_us = n;
    } else if (arg == "--top-k" && (v = next()) != nullptr && parse_int(v, n) && n >= 0) {
      opts.top_k = n;
    } else if (arg == "--alert-p99-us" && (v = next()) != nullptr && parse_int(v, n) && n >= 0) {
      opts.alert_p99_us = n;
    } else if (arg == "--daemon" && (v = next()) != nullptr) {
      opts.daemon = v;
    } else if (v != nullptr) {
      std::fprintf(stderr, "xsp_top: bad value '%s' for %s\n", v, arg.c_str());
      return false;
    } else {
      std::fprintf(stderr, "xsp_top: bad argument '%s'\n", arg.c_str());
      return false;
    }
  }
  if (opts.level != "m" && opts.level != "ml" && opts.level != "mlg") {
    std::fprintf(stderr, "xsp_top: --level must be m, ml, or mlg\n");
    return false;
  }
  if (opts.stream_format != "chrome" && opts.stream_format != "spans" &&
      opts.stream_format != "binary") {
    std::fprintf(stderr, "xsp_top: --stream-format must be chrome, spans, or binary\n");
    return false;
  }
  return true;
}

std::string format_ns(Ns v) {
  char buf[48];
  if (v >= kNsPerMs) {
    std::snprintf(buf, sizeof buf, "%.3f ms", to_ms(v));
  } else if (v >= kNsPerUs) {
    std::snprintf(buf, sizeof buf, "%.3f us", to_us(v));
  } else {
    std::snprintf(buf, sizeof buf, "%" PRId64 " ns", v);
  }
  return buf;
}

std::string format_double(double v, const char* fmt = "%.2f") {
  char buf[48];
  std::snprintf(buf, sizeof buf, fmt, v);
  return buf;
}

/// Cumulative streaming-export cost across the worker's finished runs
/// (RunTrace::streamed_spans/streamed_bytes), published by the worker and
/// read by the dashboard thread.
struct ExportTelemetry {
  std::atomic<std::uint64_t> spans{0};
  std::atomic<std::uint64_t> bytes{0};
};

void render_dashboard(const Options& opts, const analysis::OnlineSnapshot& snap,
                      const profile::SlotTelemetry& slots, const ExportTelemetry& exported,
                      std::int64_t runs_done, bool final) {
  std::printf("--- xsp_top | %s @ batch %lld on %s | runs %lld/%lld%s ---\n", opts.model.c_str(),
              static_cast<long long>(opts.batch), opts.system.c_str(),
              static_cast<long long>(runs_done), static_cast<long long>(opts.runs),
              final ? " | final" : "");
  std::printf(
      "spans %" PRIu64 " (layer %" PRIu64 ", kernel %" PRIu64 ", memcpy %" PRIu64
      ") | window %.0fms: %.0f span/s, gpu busy %.1f%% | cumulative gpu %.1f%%\n",
      snap.spans, snap.layer_spans, snap.kernel_spans, snap.memcpy_spans, to_ms(snap.window),
      snap.window_spans_per_sec, snap.window_gpu_busy_pct, snap.gpu_pct);
  std::printf("latency p50/p95/p99: layer %s / %s / %s | kernel %s / %s / %s\n",
              format_ns(snap.layer_p50).c_str(), format_ns(snap.layer_p95).c_str(),
              format_ns(snap.layer_p99).c_str(), format_ns(snap.kernel_p50).c_str(),
              format_ns(snap.kernel_p95).c_str(), format_ns(snap.kernel_p99).c_str());

  std::printf("shard loads:");
  for (std::size_t i = 0; i < snap.shard_spans.size(); ++i) {
    std::printf(" [%zu] %" PRIu64, i, snap.shard_spans[i]);
  }
  std::printf(" | imbalance %.2fx | interned %" PRIu64 " strings ~%" PRIu64 " B\n",
              analysis::shard_imbalance(snap.shard_spans), snap.interned_strings,
              snap.interned_bytes);
  std::printf("slots: live %" PRIu64 ", retired %" PRIu64 ", pooled %" PRIu64 ", ~%" PRIu64
              " B\n",
              slots.live_slots, slots.retired_slots, slots.pooled_slots, slots.slot_bytes);
  // Bounded interning: the budget in force and how often intern() hit it.
  if (snap.strtab_budget_bytes > 0) {
    std::printf("strtab: ~%" PRIu64 " B / budget %" PRIu64 " B, rejected %" PRIu64 "\n",
                snap.interned_bytes, snap.strtab_budget_bytes, snap.rejected_interns);
  } else {
    std::printf("strtab: ~%" PRIu64 " B, unbounded, rejected %" PRIu64 "\n",
                snap.interned_bytes, snap.rejected_interns);
  }
  // Always emitted (the CI smoke greps for it): rate 1 with no sheds
  // renders as "off".
  if (snap.sampling_rate < 1.0 || snap.sampled_dropped > 0 || snap.kernel_row_limit > 0) {
    std::printf("sampling: rate %.3f | kept %" PRIu64 ", dropped %" PRIu64
                " | est spans %.0f (observed %" PRIu64 ")",
                snap.sampling_rate, snap.sampled_kept, snap.sampled_dropped, snap.est_spans,
                snap.spans);
    if (snap.kernel_row_limit > 0) {
      std::printf(" | top-k %zu kernels, %" PRIu64 " evictions", snap.kernel_row_limit,
                  snap.kernel_evictions);
    }
    std::printf("\n");
  } else {
    std::printf("sampling: off (rate 1.000, every span admitted)\n");
  }
  if (!opts.stream.empty()) {
    const std::uint64_t spans = exported.spans.load(std::memory_order_acquire);
    const std::uint64_t bytes = exported.bytes.load(std::memory_order_acquire);
    std::printf("export: %" PRIu64 " spans, %" PRIu64 " B (%s, %.1f B/span) -> %s\n", spans,
                bytes, opts.stream_format.c_str(),
                spans > 0 ? static_cast<double>(bytes) / static_cast<double>(spans) : 0.0,
                opts.stream.c_str());
  }

  const auto top_rows = [](const char* what, const std::vector<analysis::OnlineAggregate>& rows,
                           std::size_t k) {
    report::TextTable table({what, "count", "total", "mean", "min", "max", "MB"});
    for (std::size_t i = 0; i < rows.size() && i < k; ++i) {
      const auto& r = rows[i];
      table.add_row({r.key.str(), std::to_string(r.count), format_ns(r.total_ns),
                     format_ns(static_cast<Ns>(r.mean_ns())), format_ns(r.min_ns),
                     format_ns(r.max_ns), format_double(r.bytes / 1e6)});
    }
    if (table.rows() > 0) std::printf("%s", table.str().c_str());
  };
  top_rows("top kernels", snap.kernels, 5);
  top_rows("top layer types", snap.layer_types, 5);
  std::printf("\n");
  std::fflush(stdout);
}

// --- daemon mode: render the fleet from a /metrics scrape ----------------

/// One HTTP/1.0 GET: connect, send, read to EOF, return the body (empty +
/// `err` set on any failure — a daemon that vanished between scrapes is a
/// routine condition for a dashboard, not an exception).
std::string scrape_metrics(const net::Endpoint& ep, std::string& err) {
  err.clear();
  net::Socket sock = net::try_connect(ep, /*timeout_ms=*/1000, &err);
  if (!sock.valid()) return {};
  const std::string req = "GET /metrics HTTP/1.0\r\n\r\n";
  std::size_t off = 0;
  while (off < req.size()) {
    std::size_t n = 0;
    const net::IoResult r = sock.write_some(req.data() + off, req.size() - off, n);
    if (r == net::IoResult::kOk) {
      off += n;
    } else if (r == net::IoResult::kWouldBlock) {
      if (!sock.wait_writable(1000)) {
        err = "timed out sending request";
        return {};
      }
    } else {
      err = "connection died sending request";
      return {};
    }
  }
  std::string resp;
  char chunk[16 * 1024];
  for (;;) {
    std::size_t n = 0;
    const net::IoResult r = sock.read_some(chunk, sizeof chunk, n);
    if (r == net::IoResult::kOk) {
      resp.append(chunk, n);
    } else if (r == net::IoResult::kWouldBlock) {
      if (!sock.wait_readable(2000)) {
        err = "timed out reading response";
        return {};
      }
    } else if (r == net::IoResult::kClosed) {
      break;
    } else {
      err = "connection died reading response";
      return {};
    }
  }
  const auto head_end = resp.find("\r\n\r\n");
  if (head_end == std::string::npos) {
    err = "malformed HTTP response";
    return {};
  }
  // Status line: "HTTP/1.0 200 OK".
  const auto sp = resp.find(' ');
  if (sp == std::string::npos || resp.compare(sp + 1, 3, "200") != 0) {
    err = "non-200 response";
    return {};
  }
  return resp.substr(head_end + 4);
}

/// Values keyed by metric name, split into unlabeled scalars and the
/// per-connection series (`conn` label value -> field -> value).
struct FleetView {
  std::map<std::string, double> scalars;
  std::map<std::string, std::map<std::string, double>> per_conn;
};

FleetView parse_exposition(const std::string& body) {
  FleetView view;
  std::size_t pos = 0;
  while (pos < body.size()) {
    auto eol = body.find('\n', pos);
    if (eol == std::string::npos) eol = body.size();
    const std::string_view line(body.data() + pos, eol - pos);
    pos = eol + 1;
    // The shared parser handles the optional trailing timestamp and
    // quoted label values; comments and malformed lines report false.
    metrics::ExpositionSample sample;
    if (!metrics::parse_exposition_line(line, sample)) continue;
    if (sample.labels.empty()) {
      view.scalars[std::string(sample.name)] = sample.value;
      continue;
    }
    // Only the conn="..." label matters for the fleet table.
    const auto conn = metrics::label_value(sample.labels, "conn");
    if (!conn.has_value()) continue;
    view.per_conn[*conn][std::string(sample.name)] = sample.value;
  }
  return view;
}

void render_fleet(const FleetView& view, std::int64_t scrape, std::int64_t total) {
  const auto scalar = [&view](const char* name) -> double {
    const auto it = view.scalars.find(name);
    return it != view.scalars.end() ? it->second : 0.0;
  };
  std::printf("--- xsp_top --daemon | scrape %lld/%lld%s ---\n",
              static_cast<long long>(scrape), static_cast<long long>(total),
              scrape == total ? " | final" : "");
  std::printf("ingested %.0f spans | connections: %.0f open, %.0f accepted, %.0f closed, "
              "%.0f errored\n",
              scalar("xsp_ingested_spans_total"), scalar("xsp_collector_open_connections"),
              scalar("xsp_collector_connections_accepted_total"),
              scalar("xsp_collector_connections_closed_total"),
              scalar("xsp_collector_connections_errored_total"));
  std::printf("wire: %.0f B, %.0f frames, %.0f heartbeats | producers reported: %.0f dropped, "
              "%.0f reconnects\n",
              scalar("xsp_collector_bytes_received_total"),
              scalar("xsp_collector_frames_total"), scalar("xsp_collector_heartbeats_total"),
              scalar("xsp_collector_producer_dropped_spans_total"),
              scalar("xsp_collector_producer_reconnects_total"));
  std::printf("strtab: ~%.0f B, rejected %.0f\n", scalar("xsp_strtab_bytes"),
              scalar("xsp_strtab_rejected_total"));
  if (!view.per_conn.empty()) {
    report::TextTable table(
        {"conn", "published", "sent", "dropped", "outbox", "hb age", "stale"});
    for (const auto& [conn, fields] : view.per_conn) {
      const auto field = [&fields = fields](const char* name) -> double {
        const auto it = fields.find(name);
        return it != fields.end() ? it->second : 0.0;
      };
      // Connections without heartbeat series still show their ingest side.
      const bool has_hb = fields.count("xsp_producer_heartbeat_age_seconds") > 0;
      table.add_row({conn, format_double(field("xsp_producer_published_spans_total"), "%.0f"),
                     format_double(field("xsp_producer_sent_spans_total"), "%.0f"),
                     format_double(field("xsp_producer_dropped_spans_total"), "%.0f"),
                     format_double(field("xsp_producer_outbox_spans"), "%.0f"),
                     has_hb ? format_double(field("xsp_producer_heartbeat_age_seconds"), "%.2fs")
                            : "-",
                     !has_hb ? "-" : (field("xsp_producer_stale") > 0 ? "STALE" : "ok")});
    }
    std::printf("%s", table.str().c_str());
  }
  std::printf("\n");
  std::fflush(stdout);
}

int run_daemon_mode(const Options& opts) {
  const net::Endpoint ep = net::Endpoint::parse(opts.daemon);
  std::int64_t ok_scrapes = 0;
  for (std::int64_t i = 1; i <= opts.runs; ++i) {
    std::string err;
    const std::string body = scrape_metrics(ep, err);
    if (!err.empty()) {
      std::fprintf(stderr, "xsp_top: scrape %lld failed: %s\n",
                   static_cast<long long>(i), err.c_str());
    } else {
      ++ok_scrapes;
      render_fleet(parse_exposition(body), i, opts.runs);
    }
    if (i < opts.runs && opts.interval_ms > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(opts.interval_ms));
    }
  }
  std::printf("xsp_top: done (%lld/%lld scrapes)\n", static_cast<long long>(ok_scrapes),
              static_cast<long long>(opts.runs));
  std::fflush(stdout);
  return ok_scrapes > 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  Options opts;
  if (!parse_args(argc, argv, opts)) {
    print_usage();
    return 2;
  }

  if (!opts.daemon.empty()) {
    try {
      return run_daemon_mode(opts);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "xsp_top: %s\n", e.what());
      return 1;
    }
  }

  const models::ModelInfo* model = models::find_tensorflow_model(opts.model);
  if (model == nullptr) {
    std::fprintf(stderr, "xsp_top: unknown model '%s'\n", opts.model.c_str());
    return 1;
  }

  profile::ProfileOptions popts;
  popts.layer_level = opts.level != "m";
  popts.gpu_level = opts.level == "mlg";
  popts.trace_shards = opts.shards;
  popts.live_stats = true;
  popts.live_stats_window = opts.window_ms * kNsPerMs;
  popts.sampling_rate = opts.sample;
  popts.sampling_tail_keep_ns = opts.tail_keep_us * kNsPerUs;
  popts.top_k_kernels = static_cast<std::size_t>(opts.top_k);
  if (!opts.stream.empty()) {
    popts.stream_export_path = opts.stream;
    popts.stream_export_format = opts.stream_format == "chrome" ? trace::ExportFormat::kChromeTrace
                                 : opts.stream_format == "spans" ? trace::ExportFormat::kSpanJson
                                                                  : trace::ExportFormat::kBinary;
  }

  try {
    profile::Session session(sim::system_by_name(opts.system), framework::FrameworkKind::kTFlow);
    const framework::Graph graph = model->build(opts.batch, /*decompose_bn=*/true);

    std::atomic<std::int64_t> runs_done{0};
    std::atomic<bool> failed{false};
    std::string failure;
    ExportTelemetry exported;
    // The worker owns the session for the duration; the main thread only
    // reads live_snapshot(), which is the documented cross-thread surface.
    std::thread worker([&] {
      try {
        for (std::int64_t i = 0; i < opts.runs; ++i) {
          const profile::RunTrace run = session.profile(graph, popts);
          exported.spans.fetch_add(run.streamed_spans, std::memory_order_release);
          exported.bytes.fetch_add(run.streamed_bytes, std::memory_order_release);
          runs_done.fetch_add(1, std::memory_order_release);
        }
      } catch (const std::exception& e) {
        failure = e.what();
        failed.store(true, std::memory_order_release);
      }
    });

    // Alerting: once the first live run has created the analyzer,
    // register an edge-triggered kernel-p99 rule and poll it at the
    // dashboard cadence — the serving-layer shape the alert API targets.
    std::shared_ptr<analysis::OnlineAnalyzer> analyzer;
    const auto ensure_alert = [&] {
      if (opts.alert_p99_us <= 0 || analyzer != nullptr) return;
      analyzer = session.live_analyzer();
      if (analyzer == nullptr) return;
      analysis::AlertRule rule;
      rule.name = "kernel_p99";
      rule.value = [](const analysis::OnlineSnapshot& s) {
        return static_cast<double>(s.kernel_p99);
      };
      rule.threshold = static_cast<double>(opts.alert_p99_us * kNsPerUs);
      rule.fire_above = true;
      analyzer->add_alert(std::move(rule), [](const analysis::AlertRule& r, double v,
                                              const analysis::OnlineSnapshot&) {
        std::printf("ALERT: %s = %s crossed %s\n", r.name.c_str(),
                    format_ns(static_cast<Ns>(v)).c_str(),
                    format_ns(static_cast<Ns>(r.threshold)).c_str());
      });
    };

    if (opts.interval_ms > 0) {
      while (runs_done.load(std::memory_order_acquire) < opts.runs &&
             !failed.load(std::memory_order_acquire)) {
        std::this_thread::sleep_for(std::chrono::milliseconds(opts.interval_ms));
        ensure_alert();
        if (analyzer != nullptr) analyzer->poll_alerts();
        render_dashboard(opts, session.live_snapshot(), session.slot_telemetry(), exported,
                         runs_done.load(std::memory_order_acquire), /*final=*/false);
      }
    }
    worker.join();
    ensure_alert();
    if (analyzer != nullptr) analyzer->poll_alerts();
    if (failed.load(std::memory_order_acquire)) {
      std::fprintf(stderr, "xsp_top: %s\n", failure.c_str());
      return 1;
    }
    render_dashboard(opts, session.live_snapshot(), session.slot_telemetry(), exported,
                     runs_done.load(std::memory_order_acquire),
                     /*final=*/true);
    std::printf("xsp_top: done (%lld runs, %" PRIu64 " spans observed)\n",
                static_cast<long long>(opts.runs), session.live_snapshot().spans);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "xsp_top: %s\n", e.what());
    return 1;
  }
  return 0;
}
