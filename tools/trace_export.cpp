// trace_export — run one profiled evaluation and stream its trace to a
// file as it is collected (the streaming-export subsystem end to end:
// session -> sharded trace server -> drain subscribers -> one sink).
//
//   trace_export --out trace.json
//   trace_export --model MLPerf_ResNet50_v1.5 --batch 8 --level mlg
//                --format spans --shards 4 --out run.json   (one line)
//
// Options:
//   --model NAME     model-zoo model (default MLPerf_ResNet50_v1.5)
//   --system NAME    simulated system (default Tesla_V100)
//   --batch N        batch size (default 1)
//   --level m|ml|mlg profiling levels (default mlg, no GPU metric replay)
//   --gpu-metrics    collect the four GPU metrics too (implies mlg)
//   --format chrome|spans   output document (default chrome)
//   --shards N       trace-server shards (default 1; 0 = per-core default)
//   --out FILE       output path (required)
//
// CI runs this as the streaming-export smoke: the output must parse as
// JSON and carry at least the three pipeline spans.
#include <cerrno>
#include <cstdio>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <string>

#include "xsp/models/registry.hpp"
#include "xsp/profile/session.hpp"
#include "xsp/sim/gpu_spec.hpp"
#include "xsp/trace/export.hpp"

namespace {

using namespace xsp;

struct Options {
  std::string model = "MLPerf_ResNet50_v1.5";
  std::string system = "Tesla_V100";
  std::int64_t batch = 1;
  std::string level = "mlg";
  bool gpu_metrics = false;
  std::string format = "chrome";
  std::size_t shards = 1;
  std::string out;
};

void print_usage() {
  std::fprintf(stderr,
               "usage: trace_export --out FILE [--model NAME] [--system NAME] [--batch N]\n"
               "                    [--level m|ml|mlg] [--gpu-metrics] [--format chrome|spans]\n"
               "                    [--shards N]\n");
}

/// Strict integer parse: the whole argument must be a number (atoll-style
/// silent zero on a typo would profile the wrong configuration).
bool parse_int(const char* s, std::int64_t& out) {
  char* end = nullptr;
  errno = 0;
  const long long v = std::strtoll(s, &end, 10);
  if (end == s || *end != '\0' || errno == ERANGE) return false;
  out = v;
  return true;
}

bool parse_args(int argc, char** argv, Options& opts) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
    const char* v = nullptr;
    std::int64_t n = 0;
    if (arg == "--model" && (v = next()) != nullptr) {
      opts.model = v;
    } else if (arg == "--system" && (v = next()) != nullptr) {
      opts.system = v;
    } else if (arg == "--batch" && (v = next()) != nullptr && parse_int(v, n) && n > 0) {
      opts.batch = n;
    } else if (arg == "--level" && (v = next()) != nullptr) {
      opts.level = v;
    } else if (arg == "--gpu-metrics") {
      opts.gpu_metrics = true;
    } else if (arg == "--format" && (v = next()) != nullptr) {
      opts.format = v;
    } else if (arg == "--shards" && (v = next()) != nullptr && parse_int(v, n) && n >= 0) {
      opts.shards = static_cast<std::size_t>(n);
    } else if (arg == "--out" && (v = next()) != nullptr) {
      opts.out = v;
    } else if (v != nullptr) {
      std::fprintf(stderr, "trace_export: bad value '%s' for %s\n", v, arg.c_str());
      return false;
    } else {
      std::fprintf(stderr, "trace_export: bad argument '%s'\n", arg.c_str());
      return false;
    }
  }
  if (opts.out.empty()) {
    std::fprintf(stderr, "trace_export: --out is required\n");
    return false;
  }
  if (opts.level != "m" && opts.level != "ml" && opts.level != "mlg") {
    std::fprintf(stderr, "trace_export: --level must be m, ml, or mlg\n");
    return false;
  }
  if (opts.format != "chrome" && opts.format != "spans") {
    std::fprintf(stderr, "trace_export: --format must be chrome or spans\n");
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Options opts;
  if (!parse_args(argc, argv, opts)) {
    print_usage();
    return 2;
  }

  const models::ModelInfo* model = models::find_tensorflow_model(opts.model);
  if (model == nullptr) {
    std::fprintf(stderr, "trace_export: unknown model '%s'\n", opts.model.c_str());
    return 1;
  }

  profile::ProfileOptions popts;
  // --gpu-metrics implies the full M/L/G stack, as the usage text says.
  popts.layer_level = opts.level != "m" || opts.gpu_metrics;
  popts.gpu_level = opts.level == "mlg" || opts.gpu_metrics;
  popts.gpu_metrics = opts.gpu_metrics;
  popts.trace_shards = opts.shards;
  popts.stream_export_path = opts.out;
  popts.stream_export_format = opts.format == "chrome" ? trace::ExportFormat::kChromeTrace
                                                       : trace::ExportFormat::kSpanJson;

  profile::RunTrace run;
  try {
    profile::Session session(sim::system_by_name(opts.system), framework::FrameworkKind::kTFlow);
    const framework::Graph graph = model->build(opts.batch, /*decompose_bn=*/true);
    run = session.profile(graph, popts);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "trace_export: %s\n", e.what());
    return 1;
  }

  std::printf("trace_export: %s @ batch %lld on %s (%s, %zu shard%s)\n", opts.model.c_str(),
              static_cast<long long>(opts.batch), opts.system.c_str(),
              popts.level_string().c_str(), run.trace_shards, run.trace_shards == 1 ? "" : "s");
  std::printf("trace_export: streamed %llu raw spans (%s) to %s; assembled timeline: %zu spans\n",
              static_cast<unsigned long long>(run.streamed_spans),
              trace::export_format_name(popts.stream_export_format), opts.out.c_str(),
              run.timeline.size());
  return 0;
}
