// trace_export — run one profiled evaluation and stream its trace to a
// file as it is collected (the streaming-export subsystem end to end:
// session -> sharded trace server -> drain subscribers -> one sink).
//
//   trace_export --out trace.json
//   trace_export --model MLPerf_ResNet50_v1.5 --batch 8 --level mlg
//                --format spans --shards 4 --out run.json   (one line)
//   trace_export --format binary --out run.xspb
//   trace_export --decode run.xspb --format spans --out run.json
//
// Options:
//   --model NAME     model-zoo model (default MLPerf_ResNet50_v1.5)
//   --system NAME    simulated system (default Tesla_V100)
//   --batch N        batch size (default 1)
//   --level m|ml|mlg profiling levels (default mlg, no GPU metric replay)
//   --gpu-metrics    collect the four GPU metrics too (implies mlg)
//   --format chrome|spans|binary   output document (default chrome;
//                    binary = XSP binary wire v1, src/trace/README.md)
//   --shards N       trace-server shards (default 1; 0 = per-core default)
//   --out FILE       output path (required)
//   --decode IN      decode mode: read binary wire file IN and re-export
//                    it to --out as --format chrome|spans (no profiling
//                    happens; default format for decode is spans)
//
// CI runs this as the streaming-export smoke: the output must parse as
// JSON and carry at least the three pipeline spans — and as the binary
// round-trip smoke: --format binary piped through --decode must parse.
#include <cerrno>
#include <cstdio>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <stdexcept>
#include <string>

#include "xsp/models/registry.hpp"
#include "xsp/profile/session.hpp"
#include "xsp/sim/gpu_spec.hpp"
#include "xsp/trace/export.hpp"
#include "xsp/trace/wire.hpp"

namespace {

using namespace xsp;

struct Options {
  std::string model = "MLPerf_ResNet50_v1.5";
  std::string system = "Tesla_V100";
  std::int64_t batch = 1;
  std::string level = "mlg";
  bool gpu_metrics = false;
  std::string format;  // empty = default (chrome; spans in decode mode)
  std::size_t shards = 1;
  std::string out;
  std::string decode;  // non-empty selects decode mode
};

void print_usage() {
  std::fprintf(stderr,
               "usage: trace_export --out FILE [--model NAME] [--system NAME] [--batch N]\n"
               "                    [--level m|ml|mlg] [--gpu-metrics]\n"
               "                    [--format chrome|spans|binary] [--shards N]\n"
               "       trace_export --decode IN --out FILE [--format chrome|spans]\n");
}

/// Strict integer parse: the whole argument must be a number (atoll-style
/// silent zero on a typo would profile the wrong configuration).
bool parse_int(const char* s, std::int64_t& out) {
  char* end = nullptr;
  errno = 0;
  const long long v = std::strtoll(s, &end, 10);
  if (end == s || *end != '\0' || errno == ERANGE) return false;
  out = v;
  return true;
}

bool parse_args(int argc, char** argv, Options& opts) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
    const char* v = nullptr;
    std::int64_t n = 0;
    if (arg == "--model" && (v = next()) != nullptr) {
      opts.model = v;
    } else if (arg == "--system" && (v = next()) != nullptr) {
      opts.system = v;
    } else if (arg == "--batch" && (v = next()) != nullptr && parse_int(v, n) && n > 0) {
      opts.batch = n;
    } else if (arg == "--level" && (v = next()) != nullptr) {
      opts.level = v;
    } else if (arg == "--gpu-metrics") {
      opts.gpu_metrics = true;
    } else if (arg == "--format" && (v = next()) != nullptr) {
      opts.format = v;
    } else if (arg == "--shards" && (v = next()) != nullptr && parse_int(v, n) && n >= 0) {
      opts.shards = static_cast<std::size_t>(n);
    } else if (arg == "--out" && (v = next()) != nullptr) {
      opts.out = v;
    } else if (arg == "--decode" && (v = next()) != nullptr) {
      opts.decode = v;
    } else if (v != nullptr) {
      std::fprintf(stderr, "trace_export: bad value '%s' for %s\n", v, arg.c_str());
      return false;
    } else {
      std::fprintf(stderr, "trace_export: bad argument '%s'\n", arg.c_str());
      return false;
    }
  }
  if (opts.out.empty()) {
    std::fprintf(stderr, "trace_export: --out is required\n");
    return false;
  }
  if (opts.level != "m" && opts.level != "ml" && opts.level != "mlg") {
    std::fprintf(stderr, "trace_export: --level must be m, ml, or mlg\n");
    return false;
  }
  if (opts.format.empty()) opts.format = opts.decode.empty() ? "chrome" : "spans";
  if (!opts.decode.empty()) {
    // Decode re-exports as JSON; re-encoding binary to binary is a copy.
    if (opts.format != "chrome" && opts.format != "spans") {
      std::fprintf(stderr, "trace_export: --decode output --format must be chrome or spans\n");
      return false;
    }
  } else if (opts.format != "chrome" && opts.format != "spans" && opts.format != "binary") {
    std::fprintf(stderr, "trace_export: --format must be chrome, spans, or binary\n");
    return false;
  }
  return true;
}

/// Decode mode: binary wire file -> BinaryReader -> StreamingExporter.
/// Decoded batches stream through the same JSON core a live session
/// drives, so the output is semantically identical to having exported
/// JSON directly — the footer telemetry comes from the binary footer
/// frame instead of the live run.
int run_decode(const Options& opts) {
  std::ifstream in(opts.decode, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "trace_export: cannot open %s\n", opts.decode.c_str());
    return 1;
  }
  std::ofstream out(opts.out, std::ios::binary | std::ios::trunc);
  if (!out) {
    std::fprintf(stderr, "trace_export: cannot open %s\n", opts.out.c_str());
    return 1;
  }
  const auto format = opts.format == "chrome" ? trace::ExportFormat::kChromeTrace
                                              : trace::ExportFormat::kSpanJson;
  try {
    trace::BinaryReader reader(in);
    trace::StreamingExporter exporter(format, out,
                                      /*with_metadata=*/format == trace::ExportFormat::kSpanJson);
    trace::SpanBatch batch;
    while (reader.next_batch(batch)) exporter.write_batch(batch);
    exporter.set_meta(reader.meta());
    exporter.finish();
    out.close();
    if (!out) {
      std::fprintf(stderr, "trace_export: short write to %s\n", opts.out.c_str());
      return 1;
    }
    if (!reader.saw_footer()) {
      std::fprintf(stderr, "trace_export: warning: %s has no footer frame (truncated stream); "
                           "decoded the %llu complete spans before the cut\n",
                   opts.decode.c_str(), static_cast<unsigned long long>(reader.spans_read()));
    }
    std::printf("trace_export: decoded %llu spans / %llu strings from %s to %s (%s, %llu bytes)\n",
                static_cast<unsigned long long>(reader.spans_read()),
                static_cast<unsigned long long>(reader.strings_reinterned()), opts.decode.c_str(),
                opts.out.c_str(), trace::export_format_name(format),
                static_cast<unsigned long long>(exporter.bytes_written()));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "trace_export: %s\n", e.what());
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Options opts;
  if (!parse_args(argc, argv, opts)) {
    print_usage();
    return 2;
  }
  if (!opts.decode.empty()) return run_decode(opts);

  const models::ModelInfo* model = models::find_tensorflow_model(opts.model);
  if (model == nullptr) {
    std::fprintf(stderr, "trace_export: unknown model '%s'\n", opts.model.c_str());
    return 1;
  }

  profile::ProfileOptions popts;
  // --gpu-metrics implies the full M/L/G stack, as the usage text says.
  popts.layer_level = opts.level != "m" || opts.gpu_metrics;
  popts.gpu_level = opts.level == "mlg" || opts.gpu_metrics;
  popts.gpu_metrics = opts.gpu_metrics;
  popts.trace_shards = opts.shards;
  popts.stream_export_path = opts.out;
  popts.stream_export_format = opts.format == "chrome"   ? trace::ExportFormat::kChromeTrace
                               : opts.format == "spans"  ? trace::ExportFormat::kSpanJson
                                                         : trace::ExportFormat::kBinary;

  profile::RunTrace run;
  try {
    profile::Session session(sim::system_by_name(opts.system), framework::FrameworkKind::kTFlow);
    const framework::Graph graph = model->build(opts.batch, /*decompose_bn=*/true);
    run = session.profile(graph, popts);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "trace_export: %s\n", e.what());
    return 1;
  }

  std::printf("trace_export: %s @ batch %lld on %s (%s, %zu shard%s)\n", opts.model.c_str(),
              static_cast<long long>(opts.batch), opts.system.c_str(),
              popts.level_string().c_str(), run.trace_shards, run.trace_shards == 1 ? "" : "s");
  std::printf(
      "trace_export: streamed %llu raw spans / %llu bytes (%s) to %s; "
      "assembled timeline: %zu spans\n",
      static_cast<unsigned long long>(run.streamed_spans),
      static_cast<unsigned long long>(run.streamed_bytes),
      trace::export_format_name(popts.stream_export_format), opts.out.c_str(),
      run.timeline.size());
  return 0;
}
