// xsp — command-line front-end to the profiler.
//
//   xsp list-models                      enumerate the model zoo
//   xsp list-systems                     enumerate the Table VII systems
//   xsp profile  --model NAME [...]      leveled profile + chosen analyses
//   xsp sweep    --model NAME [...]      batch sweep + optimal batch (A1)
//
// Common options:
//   --system NAME        (default Tesla_V100)
//   --framework tflow|mxlite             (default tflow)
//   --batch N            (default 1)
//   --analyses LIST      comma list of a1..a15 or "all" (default a2,a10,a15)
//   --library-level      enable the cuDNN/cuBLAS call tracing level
//   --export-chrome F    write the M/L/G timeline as Chrome trace JSON
//   --export-spans F     write the flat span JSON
//   --csv                emit tables as CSV instead of aligned text
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "xsp/analysis/analyses.hpp"
#include "xsp/analysis/batch_sweep.hpp"
#include "xsp/common/format.hpp"
#include "xsp/models/registry.hpp"
#include "xsp/profile/leveled.hpp"
#include "xsp/report/table.hpp"
#include "xsp/sim/gpu_spec.hpp"
#include "xsp/trace/export.hpp"

namespace {

using namespace xsp;

struct CliOptions {
  std::string command;
  std::string model = "MLPerf_ResNet50_v1.5";
  std::string system = "Tesla_V100";
  std::string framework = "tflow";
  std::int64_t batch = 1;
  std::int64_t max_batch = 256;
  std::set<std::string> analyses{"a2", "a10", "a15"};
  bool library_level = false;
  bool csv = false;
  std::string export_chrome;
  std::string export_spans;
};

void print_usage() {
  std::printf(
      "usage: xsp <list-models|list-systems|profile|sweep> [options]\n"
      "  --model NAME --system NAME --framework tflow|mxlite --batch N\n"
      "  --max-batch N --analyses a1,..,a15|all --library-level\n"
      "  --export-chrome FILE --export-spans FILE --csv\n");
}

bool parse_args(int argc, char** argv, CliOptions& opts) {
  if (argc < 2) return false;
  opts.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
    if (arg == "--model") {
      const char* v = next();
      if (v == nullptr) return false;
      opts.model = v;
    } else if (arg == "--system") {
      const char* v = next();
      if (v == nullptr) return false;
      opts.system = v;
    } else if (arg == "--framework") {
      const char* v = next();
      if (v == nullptr) return false;
      opts.framework = v;
    } else if (arg == "--batch") {
      const char* v = next();
      if (v == nullptr) return false;
      opts.batch = std::atoll(v);
    } else if (arg == "--max-batch") {
      const char* v = next();
      if (v == nullptr) return false;
      opts.max_batch = std::atoll(v);
    } else if (arg == "--analyses") {
      const char* v = next();
      if (v == nullptr) return false;
      opts.analyses.clear();
      std::stringstream ss(v);
      std::string item;
      while (std::getline(ss, item, ',')) opts.analyses.insert(item);
    } else if (arg == "--library-level") {
      opts.library_level = true;
    } else if (arg == "--csv") {
      opts.csv = true;
    } else if (arg == "--export-chrome") {
      const char* v = next();
      if (v == nullptr) return false;
      opts.export_chrome = v;
    } else if (arg == "--export-spans") {
      const char* v = next();
      if (v == nullptr) return false;
      opts.export_spans = v;
    } else {
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      return false;
    }
  }
  return true;
}

bool wants(const CliOptions& opts, const std::string& id) {
  return opts.analyses.count("all") != 0 || opts.analyses.count(id) != 0;
}

void emit(const CliOptions& opts, const report::TextTable& t) {
  std::printf("%s\n", opts.csv ? t.csv().c_str() : t.str().c_str());
}

int cmd_list_models(const CliOptions& opts) {
  report::TextTable t({"ID", "Name", "Task", "Accuracy", "Frameworks"});
  for (const auto& m : models::tensorflow_models()) {
    const bool also_mxnet = models::find_mxnet_model(m.id) != nullptr &&
                            models::find_mxnet_model(m.id)->name == m.name;
    t.add_row({std::to_string(m.id), m.name, m.task, fmt_fixed(m.paper.accuracy, 2),
               also_mxnet ? "tflow,mxlite" : "tflow"});
  }
  emit(opts, t);
  return 0;
}

int cmd_list_systems(const CliOptions& opts) {
  report::TextTable t({"Name", "GPU", "Architecture", "TFLOPS", "GB/s", "Ideal AI"});
  for (const auto& s : sim::all_systems()) {
    t.add_row({s.name, s.gpu, sim::arch_name(s.arch), fmt_fixed(s.peak_tflops, 1),
               fmt_fixed(s.mem_bw_gbps, 0), fmt_fixed(s.ideal_arithmetic_intensity(), 2)});
  }
  emit(opts, t);
  return 0;
}

int write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path);
  if (!out) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  out << content;
  std::printf("wrote %s (%zu bytes)\n", path.c_str(), content.size());
  return 0;
}

int cmd_profile(const CliOptions& opts) {
  const auto* model = models::find_tensorflow_model(opts.model);
  if (model == nullptr) {
    std::fprintf(stderr, "unknown model: %s (try `xsp list-models`)\n", opts.model.c_str());
    return 1;
  }
  const auto& system = sim::system_by_name(opts.system);
  const auto fw = opts.framework == "mxlite" ? framework::FrameworkKind::kMXLite
                                             : framework::FrameworkKind::kTFlow;

  profile::LeveledRunner runner(system, fw);
  const auto graph = model->build(opts.batch, runner.decompose_batchnorm());
  const auto result = runner.run(graph);

  std::printf("%s | %s | %s | batch %lld\n", model->name.c_str(), system.name.c_str(),
              framework::framework_name(fw), static_cast<long long>(opts.batch));
  std::printf("model latency %.3f ms | layer overhead %.3f ms | GPU overhead %.3f ms | "
              "GPU latency %.1f%% | conv latency %.1f%%\n\n",
              to_ms(result.profile.model_latency), to_ms(result.layer_overhead()),
              to_ms(result.gpu_overhead()), analysis::gpu_latency_percentage(result.profile),
              analysis::conv_latency_percentage(result.profile));

  const auto& p = result.profile;
  if (wants(opts, "a2") || wants(opts, "a3") || wants(opts, "a4")) {
    report::TextTable t({"Index", "Name", "Type", "Shape", "Latency (ms)", "Alloc (MB)"});
    for (const auto& r : analysis::top_layers_by_latency(p, 10)) {
      t.add_row({std::to_string(r.index), r.name, r.type, r.shape, fmt_fixed(r.latency_ms, 3),
                 fmt_fixed(r.alloc_mb, 1)});
    }
    std::printf("A2 top-10 layers:\n");
    emit(opts, t);
  }
  if (wants(opts, "a5") || wants(opts, "a6") || wants(opts, "a7")) {
    report::TextTable t({"Type", "Count", "Count %", "Latency %", "Alloc %"});
    for (const auto& a : analysis::layer_type_aggregation(p)) {
      t.add_row({a.type, std::to_string(a.count), fmt_fixed(a.count_pct, 1),
                 fmt_fixed(a.latency_pct, 1), fmt_fixed(a.alloc_pct, 1)});
    }
    std::printf("A5-A7 layer types:\n");
    emit(opts, t);
  }
  if (wants(opts, "a8") || wants(opts, "a9")) {
    report::TextTable t({"Kernel", "Layer", "Latency (ms)", "Gflops", "AI", "Bound"});
    for (const auto& r : analysis::top_kernels_by_latency(p, system, 10)) {
      t.add_row({r.name, std::to_string(r.layer_index), fmt_fixed(r.latency_ms, 3),
                 fmt_fixed(r.gflops, 2), fmt_fixed(r.arithmetic_intensity, 2),
                 r.memory_bound ? "memory" : "compute"});
    }
    std::printf("A8 top-10 kernel invocations:\n");
    emit(opts, t);
  }
  if (wants(opts, "a10")) {
    report::TextTable t({"Kernel", "Count", "Latency (ms)", "Latency %", "Occup %", "Bound"});
    for (const auto& r : analysis::a10_kernel_by_name(p, system)) {
      t.add_row({r.name, std::to_string(r.count), fmt_fixed(r.latency_ms, 3),
                 fmt_fixed(r.latency_pct, 2), fmt_fixed(r.occupancy_pct, 1),
                 r.memory_bound ? "memory" : "compute"});
    }
    std::printf("A10 kernels by name:\n");
    emit(opts, t);
  }
  if (wants(opts, "a11") || wants(opts, "a12") || wants(opts, "a13") || wants(opts, "a14")) {
    report::TextTable t({"Index", "Type", "Layer (ms)", "Kernel (ms)", "GPU %", "Gflops",
                         "AI", "Bound"});
    const auto rows = analysis::a11_kernel_by_layer(p, system);
    const auto gpu = analysis::a13_gpu_vs_nongpu(p);
    for (std::size_t i = 0; i < rows.size(); ++i) {
      const auto& r = rows[i];
      t.add_row({std::to_string(r.index), r.type, fmt_fixed(r.layer_latency_ms, 3),
                 fmt_fixed(r.kernel_latency_ms, 3), fmt_fixed(gpu[i].gpu_pct, 1),
                 fmt_fixed(r.gflops, 2), fmt_fixed(r.arithmetic_intensity, 2),
                 r.memory_bound ? "memory" : "compute"});
    }
    std::printf("A11-A14 per-layer GPU aggregation:\n");
    emit(opts, t);
  }
  if (wants(opts, "a15")) {
    const auto agg = analysis::a15_model_aggregate(p, system);
    std::printf("A15 model aggregate: kernels %.3f ms | %.2f Gflops | reads %.1f MB | "
                "writes %.1f MB | occupancy %.1f%% | AI %.2f | %s-bound\n\n",
                agg.kernel_latency_ms, agg.gflops, agg.dram_reads_mb, agg.dram_writes_mb,
                agg.occupancy_pct, agg.arithmetic_intensity,
                agg.memory_bound ? "memory" : "compute");
  }

  if (!opts.export_chrome.empty() || !opts.export_spans.empty()) {
    // Re-profile once with everything on for the richest timeline.
    profile::Session session(system, fw);
    auto popts = profile::ProfileOptions::full(true);
    popts.library_level = opts.library_level;
    const auto run = session.profile(graph, popts);
    if (!opts.export_chrome.empty()) {
      const int rc = write_file(opts.export_chrome, trace::to_chrome_trace(run.timeline));
      if (rc != 0) return rc;
    }
    if (!opts.export_spans.empty()) {
      const int rc = write_file(opts.export_spans, trace::to_span_json(run.timeline));
      if (rc != 0) return rc;
    }
  }
  return 0;
}

int cmd_sweep(const CliOptions& opts) {
  const auto* model = models::find_tensorflow_model(opts.model);
  if (model == nullptr) {
    std::fprintf(stderr, "unknown model: %s\n", opts.model.c_str());
    return 1;
  }
  const auto& system = sim::system_by_name(opts.system);
  const auto fw = opts.framework == "mxlite" ? framework::FrameworkKind::kMXLite
                                             : framework::FrameworkKind::kTFlow;
  profile::LeveledRunner runner(system, fw);
  const auto info = analysis::model_information(runner, *model, opts.max_batch);

  report::TextTable t({"Batch", "Latency (ms)", "Inputs/sec"});
  for (const auto& pt : info.points) {
    t.add_row({std::to_string(pt.batch), fmt_fixed(pt.latency_ms, 3),
               fmt_fixed(pt.throughput(), 1)});
  }
  emit(opts, t);
  std::printf("optimal batch %lld | max throughput %.1f inputs/sec | online latency %.3f ms\n",
              static_cast<long long>(info.optimal_batch), info.max_throughput,
              info.online_latency_ms);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  CliOptions opts;
  if (!parse_args(argc, argv, opts)) {
    print_usage();
    return 2;
  }
  try {
    if (opts.command == "list-models") return cmd_list_models(opts);
    if (opts.command == "list-systems") return cmd_list_systems(opts);
    if (opts.command == "profile") return cmd_profile(opts);
    if (opts.command == "sweep") return cmd_sweep(opts);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  print_usage();
  return 2;
}
