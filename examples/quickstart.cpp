// Quickstart: profile MLPerf_ResNet50_v1.5 on the simulated Tesla V100
// across the three XSP levels and print the headline analyses.
//
// This walks the exact flow of the paper's Section III-D example:
//   1. leveled experimentation (M, M/L, M/L/G runs),
//   2. the merged accurate profile,
//   3. a few of the A1-A15 analyses over it.
#include <cstdio>

#include "xsp/analysis/analyses.hpp"
#include "xsp/analysis/batch_sweep.hpp"
#include "xsp/analysis/multirun.hpp"
#include "xsp/common/format.hpp"
#include "xsp/models/registry.hpp"
#include "xsp/profile/leveled.hpp"
#include "xsp/report/table.hpp"
#include "xsp/sim/gpu_spec.hpp"

int main() {
  using namespace xsp;

  const auto& system = sim::tesla_v100();
  const auto* model = models::find_tensorflow_model("MLPerf_ResNet50_v1.5");
  if (model == nullptr) {
    std::fprintf(stderr, "model not found\n");
    return 1;
  }

  profile::LeveledRunner runner(system, framework::FrameworkKind::kTFlow);

  // --- leveled experimentation at batch 256 (Figure 2) ---------------------
  const std::int64_t batch = 256;
  const auto result = runner.run_model(*model, batch);

  std::printf("== %s on %s (batch %lld) ==\n", model->name.c_str(), system.name.c_str(),
              static_cast<long long>(batch));
  std::printf("model latency (M run):         %8.2f ms\n", to_ms(result.m.model_latency));
  std::printf("model latency (M/L run):       %8.2f ms  -> layer profiling overhead %.2f ms\n",
              to_ms(result.ml.model_latency), to_ms(result.layer_overhead()));
  std::printf("model latency (M/L/G run):     %8.2f ms  -> GPU profiling overhead %.2f ms\n",
              to_ms(result.mlg.model_latency), to_ms(result.gpu_overhead()));
  std::printf("layers: %zu   kernels: %zu   trace spans (M/L/G): %zu\n\n",
              result.profile.layers.size(), result.profile.kernels.size(),
              result.mlg.timeline.size());

  // --- A2: top-5 most time-consuming layers (Table II) ---------------------
  report::TextTable layer_table({"Layer Index", "Layer Name", "Layer Type", "Layer Shape",
                                 "Latency (ms)", "Alloc Mem (MB)"});
  for (const auto& row : analysis::top_layers_by_latency(result.profile, 5)) {
    layer_table.add_row({std::to_string(row.index), row.name, row.type, row.shape,
                         fmt_fixed(row.latency_ms, 2), fmt_fixed(row.alloc_mb, 1)});
  }
  std::printf("A2: top-5 most time-consuming layers\n%s\n", layer_table.str().c_str());

  // --- A10: kernels aggregated by name (Table IV) --------------------------
  report::TextTable kernel_table(
      {"Kernel Name", "Count", "Latency (ms)", "Latency %", "Gflops", "Occupancy %", "AI",
       "Memory Bound?"});
  auto kernel_rows = analysis::a10_kernel_by_name(result.profile, system);
  for (std::size_t i = 0; i < kernel_rows.size() && i < 5; ++i) {
    const auto& r = kernel_rows[i];
    kernel_table.add_row({r.name, std::to_string(r.count), fmt_fixed(r.latency_ms, 2),
                          fmt_fixed(r.latency_pct, 2), fmt_fixed(r.gflops, 2),
                          fmt_fixed(r.occupancy_pct, 2), fmt_fixed(r.arithmetic_intensity, 2),
                          r.memory_bound ? "yes" : "no"});
  }
  std::printf("A10: top-5 kernels aggregated by name (%zu unique kernels)\n%s\n",
              kernel_rows.size(), kernel_table.str().c_str());

  // --- A15: whole-model aggregate (one Table VI row) ------------------------
  const auto agg = analysis::a15_model_aggregate(result.profile, system);
  std::printf("A15: model GFlops %.2f, DRAM reads %.2f GB, writes %.2f GB, occupancy %.1f%%, "
              "%s-bound\n",
              agg.gflops, agg.dram_reads_mb / 1e3, agg.dram_writes_mb / 1e3, agg.occupancy_pct,
              agg.memory_bound ? "memory" : "compute");
  std::printf("GPU latency percentage: %.2f%%   conv latency percentage: %.2f%%\n\n",
              analysis::gpu_latency_percentage(result.profile),
              analysis::conv_latency_percentage(result.profile));

  // --- A1: throughput across batch sizes (Figure 3) -------------------------
  const auto info = analysis::model_information(runner, *model, 256);
  report::TextTable tput({"Batch", "Latency (ms)", "Inputs/sec"});
  for (const auto& pt : info.points) {
    tput.add_row({std::to_string(pt.batch), fmt_fixed(pt.latency_ms, 2),
                  fmt_fixed(pt.throughput(), 1)});
  }
  std::printf("A1: throughput across batch sizes\n%s", tput.str().c_str());
  std::printf("optimal batch size: %lld (max throughput %.1f inputs/sec, online latency %.2f ms)\n\n",
              static_cast<long long>(info.optimal_batch), info.max_throughput,
              info.online_latency_ms);

  // --- multi-run statistics (the pipeline's trimmed-mean aggregation) ------
  const auto graph = model->build(batch, runner.decompose_batchnorm());
  const auto multi = analysis::profile_n_runs(runner, graph, /*runs=*/5,
                                              /*timing_jitter=*/0.03);
  std::printf("5-run statistics (3%% simulated run-to-run jitter): model latency "
              "trimmed-mean %.2f ms, stddev %.2f ms, min %.2f, max %.2f\n",
              multi.model_latency_ms.trimmed_mean, multi.model_latency_ms.stddev,
              multi.model_latency_ms.min, multi.model_latency_ms.max);
  return 0;
}
