// System comparison (paper Section IV-C): evaluate MLPerf_ResNet50_v1.5 on
// all five Table VII systems with a fixed software stack and inspect how
// the GPU kernel sets differ per system — including the volta_* vs
// maxwell_* split and the 128x64 vs 128x128 tile dispatch difference
// between V100 and Quadro RTX.
#include <cstdio>
#include <map>

#include "xsp/analysis/analyses.hpp"
#include "xsp/analysis/batch_sweep.hpp"
#include "xsp/common/format.hpp"
#include "xsp/models/registry.hpp"
#include "xsp/profile/leveled.hpp"
#include "xsp/profile/session.hpp"
#include "xsp/report/table.hpp"
#include "xsp/sim/gpu_spec.hpp"

int main() {
  using namespace xsp;
  const auto* model = models::find_tensorflow_model("MLPerf_ResNet50_v1.5");

  report::TextTable summary({"System", "Arch", "Online (ms)", "Opt Batch", "Max Tput (in/s)",
                             "Ideal AI"});
  for (const auto& system : sim::all_systems()) {
    profile::LeveledRunner runner(system, framework::FrameworkKind::kTFlow);
    const auto info = analysis::model_information(runner, *model, 256);
    summary.add_row({system.name, sim::arch_name(system.arch),
                     fmt_fixed(info.online_latency_ms, 2), std::to_string(info.optimal_batch),
                     fmt_fixed(info.max_throughput, 1),
                     fmt_fixed(system.ideal_arithmetic_intensity(), 2)});
  }
  std::printf("MLPerf_ResNet50_v1.5 across systems (paper Section IV-C)\n\n%s\n",
              summary.str().c_str());

  // Kernel dispatch differences at batch 256 (paper: V100 calls 128x64
  // 34x where Quadro RTX calls it 18x; pre-Volta parts call maxwell_*).
  std::printf("convolution kernel dispatch at batch 256:\n");
  for (const auto& system : sim::all_systems()) {
    profile::LeveledRunner runner(system, framework::FrameworkKind::kTFlow);
    const auto result = runner.run_model(*model, 256, /*gpu_metrics=*/false);
    std::map<std::string, int> counts;
    for (const auto& k : result.profile.kernels) {
      if (k.name.view().find("scudnn") != std::string_view::npos ||
          k.name.view().find("convolve") != std::string_view::npos) {
        counts[k.name.str()] += 1;
      }
    }
    std::printf("  %-11s:", system.name.c_str());
    for (const auto& [name, count] : counts) std::printf(" %s x%d", name.c_str(), count);
    std::printf("\n");
  }
  std::printf("\nexpected shape: Tesla_V100 fastest overall; Quadro_RTX close on compute but "
              "behind on memory-bound layers (624 vs 900 GB/s); Pascal/Maxwell parts dispatch "
              "maxwell_* kernels; Turing shifts part of the 128x64 calls to 128x128.\n");

  // Sharded trace collection: the same evaluation collected into a single
  // trace server and into a 4-shard fleet. The shard merge is a batch-list
  // concatenation and assembly begin-orders nodes, so the assembled
  // timeline is identical — sharding changes how collection scales, never
  // what the trace says.
  const auto& shard_system = sim::all_systems().front();
  std::printf("\nsharded trace collection (MLPerf_ResNet50_v1.5 on %s, M/L/G):\n",
              shard_system.name.c_str());
  const auto graph = model->build(8, /*decompose_batchnorm=*/false);
  std::size_t single_spans = 0;
  for (const std::size_t shards : {std::size_t{1}, std::size_t{4}}) {
    profile::Session session(shard_system, framework::FrameworkKind::kTFlow);
    auto opts = profile::ProfileOptions::full(/*metrics=*/false);
    opts.trace_shards = shards;
    const auto run = session.profile(graph, opts);
    if (shards == 1) single_spans = run.timeline.size();
    std::printf("  %zu shard%s (%s routing): %zu spans, %zu roots, dropped_annotations=%llu%s\n",
                shards, shards == 1 ? " " : "s", trace::shard_policy_name(opts.shard_policy),
                run.timeline.size(), run.timeline.roots().size(),
                static_cast<unsigned long long>(run.dropped_annotations),
                run.timeline.size() == single_spans ? "" : "  << MISMATCH");
  }
  return 0;
}
