// Streaming export: write a trace to disk *while it is being collected*,
// with memory bounded regardless of trace length.
//
// Two shapes:
//   1. Session-level: ProfileOptions::stream_export_path tees every batch
//      to a file as the shards drain it, alongside the normal in-memory
//      timeline (the "profile a run, keep the artifacts" flow).
//   2. Service-level: a StreamingExporter attached as a kConsume drain
//      subscriber is the trace's only consumer — batches go sink -> server
//      freelist and never accumulate, so a long-running service can export
//      an unbounded span stream through a fixed-size buffer.
#include <cstdint>
#include <cstdio>
#include <string>
#include <string_view>

#include "xsp/models/registry.hpp"
#include "xsp/profile/session.hpp"
#include "xsp/sim/gpu_spec.hpp"
#include "xsp/trace/export.hpp"
#include "xsp/trace/sharded_trace_server.hpp"

int main() {
  using namespace xsp;

  // --- 1. session run streamed to a Chrome trace file ----------------------
  const auto* model = models::find_tensorflow_model("MLPerf_ResNet50_v1.5");
  profile::Session session(sim::tesla_v100(), framework::FrameworkKind::kTFlow);

  profile::ProfileOptions opts = profile::ProfileOptions::full(/*metrics=*/false);
  opts.trace_shards = 2;
  opts.stream_export_path = "resnet50_stream.trace.json";
  const auto run = session.profile(model->build(/*batch=*/4, true), opts);

  std::printf("profiled %zu spans; raw publication stream written to %s during the run "
              "(open in chrome://tracing or Perfetto)\n",
              run.timeline.size(), opts.stream_export_path.c_str());

  // --- 2. unbounded span stream through a bounded exporter -----------------
  // A 4-shard fleet whose only consumer is the exporter: every drained
  // batch is written and recycled, nothing accumulates server-side.
  trace::ShardedTraceServer server(4, trace::PublishMode::kAsync);
  std::uint64_t bytes = 0;
  trace::StreamingExporter exporter(
      trace::ExportFormat::kSpanJson,
      [&bytes](std::string_view chunk) { bytes += chunk.size(); },  // stand-in for a socket/file
      /*with_metadata=*/true);
  const trace::SubscriberId sub = server.add_drain_subscriber(
      [&exporter](const trace::SpanBatches& batches) { exporter.write_batches(batches); },
      trace::DrainHandoff::kConsume);

  constexpr std::size_t kSpans = 200'000;  // far more than any in-memory trace should hold
  for (std::size_t i = 0; i < kSpans; ++i) {
    trace::Span s;
    s.id = server.next_span_id();
    s.name = "service_op";
    s.tracer = "service";
    s.begin = static_cast<TimePoint>(i * 100);
    s.end = s.begin + 80;
    server.publish(std::move(s));
  }
  server.flush();
  server.remove_drain_subscriber(sub);
  exporter.set_meta({server.dropped_annotation_count(), server.shard_count()});
  exporter.finish();

  std::printf("service mode: %llu spans -> %.1f MB of JSON through a %zu KB buffer; "
              "spans left in the server afterwards: %zu\n",
              static_cast<unsigned long long>(exporter.spans_written()), bytes / 1e6,
              trace::StreamingExporter::kFlushThreshold / 1024, server.span_count());
  return 0;
}
