// Live online analysis over an unbounded span stream — the service shape.
//
// A 4-shard fleet whose only consumer is an OnlineAnalyzer attached as a
// kConsume drain subscriber: every drained batch is aggregated and its
// buffers recycled to the shard freelists, so memory stays bounded while
// the aggregates (per-kernel/per-layer-type totals, latency percentiles,
// windowed rates, per-shard loads) stay current. Alongside it a second,
// kObserve subscriber demonstrates fan-out: the two compose on the same
// drain.
//
// The publisher fleet is deliberately skewed — three threads publish
// lightly, one publishes 4x as much — so the per-shard load counters and
// shard_imbalance() flag a hot shard, the signal a serving layer would
// use to rebalance (ROADMAP "shard-aware analyses").
#include <atomic>
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <thread>
#include <vector>

#include "xsp/analysis/online.hpp"
#include "xsp/trace/sharded_trace_server.hpp"

int main() {
  using namespace xsp;

  constexpr std::size_t kShards = 4;
  constexpr std::size_t kPublishers = 4;
  constexpr std::size_t kSpansPerPublisher = 50'000;

  trace::ShardedTraceServer server(kShards, trace::PublishMode::kAsync);

  analysis::OnlineAnalyzerOptions opts;
  opts.shard_count = server.shard_count();
  opts.window = 10 * kNsPerMs;
  analysis::OnlineAnalyzer analyzer(opts);

  // Consumer: aggregates and releases every batch (bounded memory).
  const trace::SubscriberId consumer =
      server.add_drain_subscriber(analyzer.shard_subscriber(), trace::DrainHandoff::kConsume);
  // A second tap on the same drain, proving fan-out: observers see the
  // batches the consumer is about to release.
  std::atomic<std::uint64_t> observed{0};
  const trace::SubscriberId tap = server.add_drain_subscriber(
      [&observed](const trace::SpanBatches& batches) {
        std::uint64_t n = 0;
        for (const auto& b : batches) n += b.size();
        observed.fetch_add(n, std::memory_order_relaxed);
      },
      trace::DrainHandoff::kObserve);

  std::vector<std::thread> publishers;
  for (std::size_t t = 0; t < kPublishers; ++t) {
    publishers.emplace_back([&server, t] {
      // Thread 0 is the hot publisher: 4x the spans of each other thread.
      const std::size_t count = t == 0 ? 4 * kSpansPerPublisher : kSpansPerPublisher;
      for (std::size_t i = 0; i < count; ++i) {
        trace::Span s;
        s.id = server.next_span_id();
        s.level = trace::kKernelLevel;
        s.kind = trace::SpanKind::kExecution;
        s.name = i % 3 == 0 ? "volta_sgemm_128x64" : "eigen_elementwise";
        s.tracer = "service";
        s.begin = static_cast<TimePoint>(i * 1000);
        s.end = s.begin + 600 + static_cast<Ns>((i % 5) * 100);
        server.publish(std::move(s));
      }
    });
  }
  for (auto& p : publishers) p.join();
  server.flush();

  const auto snap = analyzer.snapshot();
  std::printf("observed %" PRIu64 " spans in %" PRIu64 " batches; server holds %zu "
              "(consumer recycled everything)\n",
              snap.spans, snap.batches, server.span_count());
  std::printf("fan-out: the kObserve tap saw %" PRIu64 " spans on the same drains\n",
              observed.load());

  std::printf("kernel aggregates (streaming A10):\n");
  for (const auto& row : snap.kernels) {
    std::printf("  %-24s count %8" PRIu64 "  total %.3f ms  mean %.0f ns\n",
                row.key.c_str(), row.count, to_ms(row.total_ns), row.mean_ns());
  }
  std::printf("kernel latency p50/p95/p99: %" PRId64 " / %" PRId64 " / %" PRId64 " ns\n",
              snap.kernel_p50, snap.kernel_p95, snap.kernel_p99);

  // Hot-shard detection: thread-hash routing keeps each publisher on one
  // shard, so the hot publisher's shard carries ~4x the load.
  const auto loads = server.shard_loads();
  std::printf("per-shard loads (server telemetry):");
  for (std::size_t i = 0; i < loads.size(); ++i) std::printf(" [%zu] %" PRIu64, i, loads[i]);
  std::printf("\nanalyzer shard counters agree:      ");
  for (std::size_t i = 0; i < snap.shard_spans.size(); ++i) {
    std::printf(" [%zu] %" PRIu64, i, snap.shard_spans[i]);
  }
  const double imbalance = analysis::shard_imbalance(snap.shard_spans);
  std::printf("\nshard imbalance: %.2fx %s\n", imbalance,
              imbalance > 2.0 ? "-> hot shard detected, a serving layer would rebalance"
                              : "(balanced)");

  server.remove_drain_subscriber(tap);
  server.remove_drain_subscriber(consumer);
  return 0;
}
