// Object-detection profiling (paper Section IV-A): SSD models attribute
// almost none of their latency to convolutions — the Where-dominated
// post-processing block is the bottleneck, and per-image NMS unrolling
// erases the batching benefit classification models enjoy.
#include <cstdio>

#include "xsp/analysis/analyses.hpp"
#include "xsp/analysis/batch_sweep.hpp"
#include "xsp/common/format.hpp"
#include "xsp/models/registry.hpp"
#include "xsp/profile/leveled.hpp"
#include "xsp/report/table.hpp"
#include "xsp/sim/gpu_spec.hpp"

int main() {
  using namespace xsp;
  const auto& system = sim::tesla_v100();
  profile::LeveledRunner runner(system, framework::FrameworkKind::kTFlow);

  const auto* ssd = models::find_tensorflow_model("MLPerf_SSD_MobileNet_v1_300x300");
  const auto* classifier = models::find_tensorflow_model("MLPerf_MobileNet_v1");

  // Same backbone, very different profiles.
  report::TextTable t({"Model", "Online (ms)", "Conv %", "Dominant Type", "Dominant %",
                       "Tput b=1", "Tput b=8"});
  for (const auto* model : {classifier, ssd}) {
    const auto b1 = runner.run_model(*model, 1);
    const auto points = analysis::sweep_batches(runner, *model, {1, 8});
    const auto by_type = analysis::layer_type_aggregation(b1.profile);
    t.add_row({model->name, fmt_fixed(to_ms(b1.profile.model_latency), 2),
               fmt_fixed(analysis::conv_latency_percentage(b1.profile), 1), by_type[0].type,
               fmt_fixed(by_type[0].latency_pct, 1), fmt_fixed(points[0].throughput(), 1),
               fmt_fixed(points[1].throughput(), 1)});
  }
  std::printf("classification vs detection with the same backbone (Section IV-A)\n\n%s\n",
              t.str().c_str());

  // Where the detection time actually goes.
  const auto profile = runner.run_model(*ssd, 1).profile;
  report::TextTable types({"Layer Type", "Count", "Latency (ms)", "Latency %"});
  int shown = 0;
  for (const auto& a : analysis::layer_type_aggregation(profile)) {
    if (shown++ >= 6) break;
    types.add_row({a.type, std::to_string(a.count), fmt_fixed(a.latency_ms, 2),
                   fmt_fixed(a.latency_pct, 1)});
  }
  std::printf("%s layer-type breakdown at batch 1:\n%s\n", ssd->name.c_str(),
              types.str().c_str());
  std::printf("expected shape: the classifier batches well (throughput grows with batch) and "
              "is conv-dominated; the detector is Where-dominated (conv <= a few %%) and its "
              "per-image post-processing keeps throughput nearly flat.\n");
  return 0;
}
