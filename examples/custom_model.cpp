// Custom-model walkthrough: the vendor-lock-in story from the paper's
// introduction. A user-defined model (not in any zoo) built with the
// public GraphBuilder API is profiled across all three stack levels with
// no framework or library modification — the layer tracer consumes the
// framework profiler's records, the GPU tracer consumes CUPTI records, and
// the interval tree correlates kernels to layers.
#include <cstdio>

#include "xsp/analysis/analyses.hpp"
#include "xsp/common/format.hpp"
#include "xsp/models/builder.hpp"
#include "xsp/profile/leveled.hpp"
#include "xsp/report/table.hpp"
#include "xsp/sim/gpu_spec.hpp"

namespace {

/// A made-up "SensorNet": mixed conv + depthwise trunk, a global-context
/// branch, and a regression head — the kind of user-defined architecture a
/// vendor-instrumented framework would not know how to annotate.
xsp::framework::Graph build_sensornet(std::int64_t batch) {
  using namespace xsp::models;
  GraphBuilder b("SensorNet", batch, /*decompose_batchnorm=*/true);
  b.input(4, 96, 96);  // 4-channel sensor input
  b.conv(24, 5, 2).batch_norm().relu();
  for (int block = 0; block < 4; ++block) {
    const auto entry = b.shape();
    b.depthwise(3, 1).batch_norm().relu();
    b.conv(entry.c, 1, 1).batch_norm();
    b.add_n(2).relu();
  }
  b.conv(96, 3, 2).batch_norm().relu();
  // Global-context branch folded back in.
  const auto trunk = b.shape();
  b.global_avg_pool();
  b.conv(96, 1, 1).sigmoid();
  b.set_shape(trunk);
  b.add();  // feature recalibration
  b.conv(128, 3, 2).batch_norm().relu();
  b.global_avg_pool();
  b.fc(64).relu();
  b.fc(7, /*bias=*/true);  // 7 regression targets
  return std::move(b).build();
}

}  // namespace

int main() {
  using namespace xsp;
  const auto& system = sim::tesla_v100();
  const auto graph = build_sensornet(16);

  std::printf("SensorNet: %zu runtime layers, %.2f MB parameters, batch %lld\n\n",
              graph.layers.size(), graph.graph_size_bytes() / 1e6,
              static_cast<long long>(graph.batch()));

  profile::LeveledRunner runner(system, framework::FrameworkKind::kTFlow);
  const auto result = runner.run(graph);

  std::printf("leveled experimentation:\n");
  std::printf("  M     %8.3f ms\n", to_ms(result.m.model_latency));
  std::printf("  M/L   %8.3f ms (layer profiling overhead %.3f ms)\n",
              to_ms(result.ml.model_latency), to_ms(result.layer_overhead()));
  std::printf("  M/L/G %8.3f ms (GPU profiling overhead %.3f ms)\n\n",
              to_ms(result.mlg.model_latency), to_ms(result.gpu_overhead()));

  // Hierarchical step-through: walk the assembled M/L/G timeline.
  std::printf("assembled timeline (first 14 nodes of the hierarchy):\n");
  int printed = 0;
  result.mlg.timeline.walk([&](const trace::TimelineNode& node, int depth) {
    if (printed++ >= 14) return;
    std::printf("  %*s%s [%s] %.3f ms\n", depth * 2, "", node.span.name.c_str(),
                trace::level_name(node.span.level), to_ms(node.span.duration()));
  });
  std::printf("  ... (%zu nodes total, %zu async kernel correlations, %zu ambiguous)\n\n",
              result.mlg.timeline.size(), result.mlg.timeline.correlated_async_count(),
              result.mlg.timeline.ambiguous_count());

  // Which layer type hurts most? (A6 on a custom model.)
  report::TextTable t({"Layer Type", "Count", "Latency %", "GPU %"});
  const auto by_type = analysis::layer_type_aggregation(result.profile);
  const auto gpu_rows = analysis::a13_gpu_vs_nongpu(result.profile);
  for (const auto& a : by_type) {
    double gpu_ms = 0;
    double layer_ms = 0;
    for (std::size_t i = 0; i < result.profile.layers.size(); ++i) {
      if (result.profile.layers[i].type == a.type) {
        gpu_ms += gpu_rows[i].gpu_ms;
        layer_ms += gpu_rows[i].layer_ms;
      }
    }
    t.add_row({a.type, std::to_string(a.count), fmt_fixed(a.latency_pct, 1),
               fmt_fixed(layer_ms > 0 ? gpu_ms / layer_ms * 100 : 0, 1)});
  }
  std::printf("layer-type breakdown (A6 + A13):\n%s", t.str().c_str());
  return 0;
}
