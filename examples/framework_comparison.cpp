// Framework comparison (paper Section IV-B): profile the same model family
// under the TensorFlow and MXNet personalities and reproduce the two
// findings:
//   * compute-bound ResNets: MXNet pays a fixed per-inference engine
//     overhead that dominates at batch 1 but washes out at the optimal
//     batch size;
//   * memory-bound MobileNets: TensorFlow's Eigen element-wise kernels
//     move excess DRAM traffic, so MXNet wins decisively at scale.
#include <cstdio>

#include "xsp/analysis/analyses.hpp"
#include "xsp/analysis/batch_sweep.hpp"
#include "xsp/analysis/compare.hpp"
#include "xsp/common/format.hpp"
#include "xsp/models/registry.hpp"
#include "xsp/profile/leveled.hpp"
#include "xsp/report/table.hpp"
#include "xsp/sim/gpu_spec.hpp"

int main() {
  using namespace xsp;
  const auto& system = sim::tesla_v100();

  profile::LeveledRunner tf(system, framework::FrameworkKind::kTFlow);
  profile::LeveledRunner mx(system, framework::FrameworkKind::kMXLite);

  report::TextTable t({"Model", "Framework", "Online (ms)", "Non-GPU @ b1 (ms)", "Opt Batch",
                       "Max Tput (in/s)", "Occup % @ opt", "Mem Bound?"});

  for (const char* name : {"ResNet_v1_50", "ResNet_v2_50", "MobileNet_v1_1.0_224",
                           "MobileNet_v1_0.5_224"}) {
    const auto* model = models::find_tensorflow_model(name);
    for (auto* runner : {&tf, &mx}) {
      const auto info = analysis::model_information(*runner, *model, 256);
      const auto b1 = runner->run_model(*model, 1, /*gpu_metrics=*/false);
      const auto opt = runner->run_model(*model, info.optimal_batch);
      const auto agg = analysis::a15_model_aggregate(opt.profile, system);
      const double non_gpu =
          to_ms(b1.profile.model_latency - b1.profile.total_kernel_latency());
      t.add_row({name,
                 runner == &tf ? "TFlow" : "MXLite",
                 fmt_fixed(info.online_latency_ms, 2), fmt_fixed(non_gpu, 2),
                 std::to_string(info.optimal_batch), fmt_fixed(info.max_throughput, 1),
                 fmt_fixed(agg.occupancy_pct, 1), agg.memory_bound ? "yes" : "no"});
    }
  }
  std::printf("Framework comparison on %s (paper Section IV-B)\n\n%s\n", system.name.c_str(),
              t.str().c_str());
  std::printf("expected shape: MXLite slower at batch 1 on ResNets (fixed engine overhead), "
              "MXLite 1.35-1.74x TFlow max throughput on MobileNets (leaner element-wise "
              "kernels, higher occupancy).\n\n");

  // Drill-down: where exactly does the MobileNet gap come from? The
  // systematic comparison API lines the two profiles up per quantity and
  // per layer type — the paper's attribution to Eigen element-wise layers.
  const auto* mobilenet = models::find_tensorflow_model("MobileNet_v1_1.0_224");
  const auto tf_opt = tf.run_model(*mobilenet, 128).profile;
  const auto mx_opt = mx.run_model(*mobilenet, 128).profile;
  const auto cmp = analysis::compare_profiles(tf_opt, system, mx_opt, system);

  report::TextTable drill({"Quantity", "TFlow", "MXLite", "MXLite/TFlow"});
  for (const char* q : {"model_latency_ms", "kernel_latency_ms", "dram_read_mb",
                        "dram_write_mb", "achieved_occupancy_pct"}) {
    const auto* row = cmp.find(q);
    drill.add_row({q, fmt_fixed(row->a, 2), fmt_fixed(row->b, 2), fmt_fixed(row->ratio(), 2)});
  }
  std::printf("MobileNet_v1_1.0_224 @ batch 128, quantity comparison:\n%s\n",
              drill.str().c_str());

  report::TextTable types({"Layer Type", "TFlow (ms)", "MXLite (ms)"});
  for (const auto& row : analysis::compare_layer_types(tf_opt, mx_opt)) {
    types.add_row({row.quantity, fmt_fixed(row.a, 2), fmt_fixed(row.b, 2)});
  }
  std::printf("per-layer-type latency:\n%s", types.str().c_str());
  return 0;
}
