// Remote-producer walkthrough: one process of a profiling fleet. Profiles
// a model locally (simulated stack, as every example does) while
// ProfileOptions::remote_endpoint forwards each run's raw publication
// spans to an xsp_collectd daemon over the XSP binary wire — the
// cross-process half of the ROADMAP's collector story.
//
// The CI multi-process job launches one collector and four of these, then
// asserts the daemon's spans_ingested equals the sum of the "published"
// figures printed here (minus accounted drops). The output is therefore
// machine-greppable:
//
//   remote_producer: runs=2 published=1234 dropped=0 reconnects=0
//
// Usage:
//   example_remote_producer --endpoint unix:/tmp/xsp.sock
//                           [--model NAME] [--batch N] [--runs N]
//                           [--level m|ml|mlg] [--inline-tags N]
//
// --inline-tags N additionally publishes N synthetic request spans per
// run through a direct RemoteSink, each carrying a *unique* request-id
// value as an inline tag (Span::inline_tags) — the high-cardinality
// workload that would grow the collector's string table without bound if
// the values interned. The collector re-interns only the (constant) span
// name and tag key; the unique values ride inside the spans, so CI's
// smoke asserts xsp_strtab_bytes stays flat while these flow. Their
// accounting prints on a separate machine-greppable line:
//
//   remote_producer: inline_published=64 inline_dropped=0
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>

#include "xsp/models/registry.hpp"
#include "xsp/profile/session.hpp"
#include "xsp/sim/gpu_spec.hpp"
#include "xsp/trace/remote_sink.hpp"

namespace {

using namespace xsp;

struct Options {
  std::string endpoint;
  std::string model = "MLPerf_ResNet50_v1.5";
  std::int64_t batch = 1;
  std::int64_t runs = 1;
  std::string level = "mlg";
  std::int64_t inline_tags = 0;
};

bool parse_int(const char* s, std::int64_t& out) {
  char* end = nullptr;
  errno = 0;
  const long long v = std::strtoll(s, &end, 10);
  if (end == s || *end != '\0' || errno == ERANGE) return false;
  out = v;
  return true;
}

bool parse_args(int argc, char** argv, Options& opts) {
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const char* value = nullptr;
    if (arg == "--endpoint" || arg == "--model" || arg == "--batch" ||
        arg == "--runs" || arg == "--level" || arg == "--inline-tags") {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "remote_producer: %s needs a value\n", arg.c_str());
        return false;
      }
      value = argv[++i];
    } else {
      std::fprintf(stderr, "remote_producer: unknown option '%s'\n", arg.c_str());
      return false;
    }
    if (arg == "--endpoint") opts.endpoint = value;
    else if (arg == "--model") opts.model = value;
    else if (arg == "--level") opts.level = value;
    else if (arg == "--batch" && (!parse_int(value, opts.batch) || opts.batch < 1)) return false;
    else if (arg == "--runs" && (!parse_int(value, opts.runs) || opts.runs < 1)) return false;
    else if (arg == "--inline-tags" &&
             (!parse_int(value, opts.inline_tags) || opts.inline_tags < 0)) return false;
  }
  if (opts.endpoint.empty()) {
    std::fprintf(stderr,
                 "usage: example_remote_producer --endpoint URI [--model NAME]\n"
                 "                               [--batch N] [--runs N] [--level m|ml|mlg]\n"
                 "                               [--inline-tags N]\n");
    return false;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Options opts;
  if (!parse_args(argc, argv, opts)) return 2;

  const models::ModelInfo* model = models::find_tensorflow_model(opts.model);
  if (model == nullptr) {
    std::fprintf(stderr, "remote_producer: unknown model '%s'\n", opts.model.c_str());
    return 2;
  }

  profile::ProfileOptions popts;
  popts.layer_level = opts.level != "m";
  popts.gpu_level = opts.level == "mlg";
  popts.remote_endpoint = opts.endpoint;

  profile::Session session(sim::tesla_v100(), framework::FrameworkKind::kTFlow);
  const framework::Graph graph = model->build(opts.batch, /*decompose_bn=*/true);

  // High-cardinality side channel: a second wire stream of synthetic
  // request spans whose unique ids ride as inline tag bytes. Only the
  // constant span name and tag key intern (once, here); the per-span
  // values never touch the string table — ours or the collector's.
  std::unique_ptr<trace::RemoteSink> inline_sink;
  trace::StrId request_span_name, request_id_key;
  if (opts.inline_tags > 0) {
    inline_sink = std::make_unique<trace::RemoteSink>(net::Endpoint::parse(opts.endpoint));
    request_span_name = trace::StrId{"synthetic_request"};
    request_id_key = trace::StrId{"request_id"};
  }

  profile::RunTrace last;
  std::uint64_t request_seq = 0;
  for (std::int64_t i = 0; i < opts.runs; ++i) {
    last = session.profile(graph, popts);
    for (std::int64_t j = 0; j < opts.inline_tags; ++j) {
      trace::Span s;
      s.id = inline_sink->next_span_id();
      s.name = request_span_name;
      s.begin = static_cast<Ns>(request_seq);
      s.end = s.begin + 1;
      char rid[trace::InlineTagMap::kValueCapacity + 1];
      std::snprintf(rid, sizeof rid, "req-%llu",
                    static_cast<unsigned long long>(request_seq++));
      s.inline_tags.set(request_id_key, rid);
      inline_sink->publish(std::move(s));
    }
  }
  if (inline_sink != nullptr) inline_sink->close();

  // remote_spans & co. are session-cumulative, so the last run's figures
  // already cover the whole fleet member. The wire footer goes out when
  // `session` dies below; the RemoteSink waits (bounded) for the daemon's
  // drain ack, so by the time this process exits the collector has
  // consumed everything it will get.
  std::printf("remote_producer: runs=%lld published=%llu dropped=%llu reconnects=%llu\n",
              static_cast<long long>(opts.runs),
              static_cast<unsigned long long>(last.remote_spans),
              static_cast<unsigned long long>(last.remote_dropped_spans),
              static_cast<unsigned long long>(last.remote_reconnects));
  std::printf("remote_producer: timeline_spans=%zu model_latency_ns=%lld\n",
              last.timeline.size(), static_cast<long long>(last.model_latency));
  if (inline_sink != nullptr) {
    std::printf("remote_producer: inline_published=%llu inline_dropped=%llu\n",
                static_cast<unsigned long long>(inline_sink->spans_published()),
                static_cast<unsigned long long>(inline_sink->spans_dropped()));
  }
  std::fflush(stdout);
  return 0;
}
